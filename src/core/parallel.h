#pragma once

#include <unordered_map>
#include <vector>

#include "core/config.h"
#include "core/cost.h"
#include "core/probe_obs.h"
#include "eth/account.h"
#include "eth/transaction.h"
#include "obs/span.h"
#include "p2p/measurement_node.h"
#include "p2p/network.h"

namespace topo::core {

/// One candidate edge of a parallel measurement: indices into the sources /
/// sinks arrays passed to ParallelMeasurement::measure.
struct ParallelEdge {
  size_t source = 0;
  size_t sink = 0;
};

struct ParallelResult {
  std::vector<bool> connected;    ///< per edge, in input order
  std::vector<bool> txa_planted;  ///< per edge: txA confirmed on its source
  std::vector<Verdict> verdicts;  ///< per edge: outcome class of the last attempt
  std::vector<uint32_t> attempts;  ///< per edge: measure_once passes covering it

  /// Per edge: which step of the probe's causal chain broke on the last
  /// attempt (kNone when connected; kTxANeverReturned on a clean negative).
  std::vector<obs::ProbeCause> causes;

  double started_at = 0.0;
  double finished_at = 0.0;
  uint64_t txs_sent = 0;
};

/// measurePar({A_k}, {B_l}, edges) — the parallel measurement primitive of
/// paper §5.3.1: r candidate edges between p sources and q sinks measured
/// in one pass, one EOA per edge.
///
/// Phase order note (documented deviation): the paper lists the source
/// phase (p2) before the sink phase (p3), but detection requires txB to sit
/// on the sink *before* txA propagates from the source — which is exactly
/// the order the paper's own serial primitive uses (Step 2 = B, Step 3 =
/// A). We therefore process sinks first, then sources strictly one at a
/// time (flood + replant + txA per source) so that a source's txA always
/// meets txC — not an eviction gap — on every other source. Isolation among
/// sources is otherwise best-effort, as §6.1 observes.
///
/// Implementation detail of the strategy seam: this is the raw TopoShot
/// batch probe that core::ToposhotStrategy drives (and that
/// core::wrap_parallel_measurement adapts for legacy callers). Constructing
/// it directly bypasses strategy selection — new code should go through
/// core::MeasurementSession or the core::MeasurementStrategy seam.
class ParallelMeasurement {
 public:
  ParallelMeasurement(p2p::Network& net, p2p::MeasurementNode& m, eth::AccountManager& accounts,
                      eth::TxFactory& factory, MeasureConfig config);

  /// Measures the candidate edges; config.repetitions > 1 repeats the whole
  /// pass and unions the positives (§6.1's validation protocol), stopping
  /// early once every edge is positive.
  ParallelResult measure(const std::vector<p2p::PeerId>& sources,
                         const std::vector<p2p::PeerId>& sinks,
                         const std::vector<ParallelEdge>& edges);

  /// Like measure(), for a subset a prior sweep left inconclusive: fresh
  /// probe EOAs come free, and the pass is tallied under `probe.remeasures`.
  /// Drivers call this strictly *after* their primary sweep (see
  /// run_retry_pass) so the retries-off trajectory is untouched.
  ParallelResult remeasure(const std::vector<p2p::PeerId>& sources,
                           const std::vector<p2p::PeerId>& sinks,
                           const std::vector<ParallelEdge>& edges);

  void set_cost_tracker(CostTracker* tracker) { cost_ = tracker; }

  /// Wires per-phase probe timing (`probe.*`, keyed to sim seconds) into
  /// `reg`; null disables. The registry must outlive the measurement.
  void set_metrics(obs::MetricsRegistry* reg) {
    obs_ = reg != nullptr ? ProbeObs::wire(*reg) : ProbeObs{};
  }

  /// Attaches a causal span tracer (null disables): every measure() call
  /// records the per-phase protocol spans under the tracer's current scope.
  /// Pair-level spans are the caller's job (core::run_batch opens them per
  /// edge), since only the caller knows the edge→pair-index mapping. The
  /// tracer must outlive the measurement.
  void set_tracer(obs::SpanTracer* tracer) { tracer_ = tracer; }
  obs::SpanTracer* tracer() const { return tracer_; }

  /// Current simulation time — lets network-level drivers timestamp their
  /// own spans without reaching into the network themselves.
  double now() const { return net_.simulator().now(); }

  const MeasureConfig& config() const { return config_; }
  MeasureConfig& config() { return config_; }

  /// Per-target flood-size overrides discovered by pre-processing
  /// (§5.2.3): nodes with custom mempools get a correspondingly larger Z.
  void set_flood_overrides(std::unordered_map<p2p::PeerId, size_t> overrides) {
    flood_overrides_ = std::move(overrides);
  }

 private:
  ParallelResult measure_once(const std::vector<p2p::PeerId>& sources,
                              const std::vector<p2p::PeerId>& sinks,
                              const std::vector<ParallelEdge>& edges);

  std::vector<eth::Transaction> make_flood(const MeasureConfig& cfg, size_t z);
  size_t flood_z_for(p2p::PeerId target, const MeasureConfig& cfg) const;

  p2p::Network& net_;
  p2p::MeasurementNode& m_;
  eth::AccountManager& accounts_;
  eth::TxFactory& factory_;
  MeasureConfig config_;
  CostTracker* cost_ = nullptr;
  ProbeObs obs_;
  obs::SpanTracer* tracer_ = nullptr;
  std::unordered_map<p2p::PeerId, size_t> flood_overrides_;
};

}  // namespace topo::core
