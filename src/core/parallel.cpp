#include "core/parallel.h"

#include <algorithm>

#include "core/flood.h"
#include "core/gas_estimator.h"
#include "p2p/node.h"

namespace topo::core {

ParallelMeasurement::ParallelMeasurement(p2p::Network& net, p2p::MeasurementNode& m,
                                         eth::AccountManager& accounts, eth::TxFactory& factory,
                                         MeasureConfig config)
    : net_(net), m_(m), accounts_(accounts), factory_(factory), config_(config) {}

std::vector<eth::Transaction> ParallelMeasurement::make_flood(const MeasureConfig& cfg,
                                                              size_t z) {
  return craft_future_flood(accounts_, factory_, cfg, z);
}

size_t ParallelMeasurement::flood_z_for(p2p::PeerId target, const MeasureConfig& cfg) const {
  auto it = flood_overrides_.find(target);
  return it == flood_overrides_.end() ? cfg.flood_Z : std::max(cfg.flood_Z, it->second);
}

ParallelResult ParallelMeasurement::measure(const std::vector<p2p::PeerId>& sources,
                                            const std::vector<p2p::PeerId>& sinks,
                                            const std::vector<ParallelEdge>& edges) {
  ParallelResult result = measure_once(sources, sinks, edges);
  for (size_t rep = 1; rep < std::max<size_t>(1, config_.repetitions); ++rep) {
    if (std::all_of(result.connected.begin(), result.connected.end(),
                    [](bool b) { return b; })) {
      break;
    }
    if (obs_.enabled()) obs_.retries->inc();
    const ParallelResult next = measure_once(sources, sinks, edges);
    for (size_t i = 0; i < result.connected.size(); ++i) {
      result.connected[i] = result.connected[i] || next.connected[i];
      result.txa_planted[i] = result.txa_planted[i] || next.txa_planted[i];
      result.verdicts[i] = result.connected[i] ? Verdict::kConnected : next.verdicts[i];
      result.causes[i] = result.connected[i] ? obs::ProbeCause::kNone : next.causes[i];
      ++result.attempts[i];
    }
    result.finished_at = next.finished_at;
    result.txs_sent += next.txs_sent;
  }
  return result;
}

ParallelResult ParallelMeasurement::remeasure(const std::vector<p2p::PeerId>& sources,
                                              const std::vector<p2p::PeerId>& sinks,
                                              const std::vector<ParallelEdge>& edges) {
  if (obs_.enabled()) obs_.remeasures->inc(edges.size());
  return measure(sources, sinks, edges);
}

ParallelResult ParallelMeasurement::measure_once(const std::vector<p2p::PeerId>& sources,
                                                 const std::vector<p2p::PeerId>& sinks,
                                                 const std::vector<ParallelEdge>& edges) {
  auto& sim = net_.simulator();
  ParallelResult result;
  result.started_at = sim.now();
  const uint64_t sent_before = m_.txs_sent();
  const size_t r = edges.size();
  result.connected.assign(r, false);
  result.txa_planted.assign(r, false);
  result.verdicts.assign(r, Verdict::kNegative);
  result.attempts.assign(r, 1);
  result.causes.assign(r, obs::ProbeCause::kNone);
  if (r == 0) return result;
  const obs::PhaseTimer timer([&sim] { return sim.now(); });
  if (obs_.enabled()) obs_.parallel_runs->inc();

  MeasureConfig cfg = config_;
  if (cfg.price_Y == 0) cfg.price_Y = estimate_price_Y(m_.view());

  // p1: one EOA per edge; plant txC_i through its source and let all of
  // them flood for X seconds.
  std::vector<eth::Address> edge_accounts(r);
  std::vector<eth::Transaction> tx_c(r);
  std::vector<eth::Transaction> tx_a(r);
  std::vector<eth::Transaction> tx_b(r);
  for (size_t i = 0; i < r; ++i) {
    edge_accounts[i] = accounts_.create_one();
    if (cost_ != nullptr) cost_->track_account(edge_accounts[i]);
    const eth::Nonce nonce = accounts_.allocate_nonce(edge_accounts[i]);
    tx_c[i] = craft_tx(factory_, cfg, edge_accounts[i], nonce, cfg.price_txC());
    tx_a[i] = craft_tx(factory_, cfg, edge_accounts[i], nonce, cfg.price_txA());
    tx_b[i] = craft_tx(factory_, cfg, edge_accounts[i], nonce, cfg.price_txB());
    m_.send_to(sources[edges[i].source], tx_c[i]);
  }
  {
    obs::ScopedPhase phase = timer.phase(obs_.wait_seconds);
    const uint64_t span = tracer_ != nullptr
                              ? tracer_->open_auto(obs::SpanKind::kPlantTxC, sim.now(), r, 0)
                              : 0;
    sim.run_until(m_.send_backlog_until() + cfg.wait_X);
    if (tracer_ != nullptr) tracer_->close(span, sim.now());
  }

  const auto flood = make_flood(cfg, cfg.flood_Z);

  // Sink phase: strictly one sink at a time — flood, wait out queue
  // truncation, then deliver the payload (txB for its own edges, txC
  // replants otherwise). Sequencing matters: while a sink sits in its
  // evicted window it must be the *only* node without the txC shields, so
  // a txB propagating from it meets an intact txC everywhere else and
  // cannot leak into a concurrently evicted sink.
  for (size_t l = 0; l < sinks.size(); ++l) {
    {
      obs::ScopedPhase phase = timer.phase(obs_.flood_seconds);
      const uint64_t span =
          tracer_ != nullptr
              ? tracer_->open_auto(obs::SpanKind::kEvictFlood, sim.now(), sinks[l], 0)
              : 0;
      const size_t z = flood_z_for(sinks[l], cfg);
      if (z > flood.size()) {
        const auto big = make_flood(cfg, z);
        m_.send_batch_to(sinks[l], big);
      } else {
        m_.send_batch_to(sinks[l], flood);
      }
      sim.run_until(m_.send_backlog_until() + cfg.post_flood_gap);
      if (tracer_ != nullptr) tracer_->close(span, sim.now());
    }
    obs::ScopedPhase phase = timer.phase(obs_.plant_seconds);
    const uint64_t span =
        tracer_ != nullptr
            ? tracer_->open_auto(obs::SpanKind::kPlantProbes, sim.now(), sinks[l], 0)
            : 0;
    for (size_t i = 0; i < r; ++i) {
      m_.send_to(sinks[l], edges[i].sink == l ? tx_b[i] : tx_c[i]);
    }
    sim.run_until(m_.send_backlog_until() + cfg.post_flood_gap);
    if (tracer_ != nullptr) tracer_->close(span, sim.now());
  }

  // Source phase: strictly one source at a time (see header note).
  std::vector<double> txa_sent_at(r, 0.0);
  for (size_t k = 0; k < sources.size(); ++k) {
    {
      obs::ScopedPhase phase = timer.phase(obs_.flood_seconds);
      const uint64_t span =
          tracer_ != nullptr
              ? tracer_->open_auto(obs::SpanKind::kEvictFlood, sim.now(), sources[k], 0)
              : 0;
      const size_t z = flood_z_for(sources[k], cfg);
      if (z > flood.size()) {
        const auto big = make_flood(cfg, z);
        m_.send_batch_to(sources[k], big);
      } else {
        m_.send_batch_to(sources[k], flood);
      }
      sim.run_until(m_.send_backlog_until() + cfg.post_flood_gap);
      if (tracer_ != nullptr) tracer_->close(span, sim.now());
    }
    obs::ScopedPhase phase = timer.phase(obs_.plant_seconds);
    const uint64_t span =
        tracer_ != nullptr
            ? tracer_->open_auto(obs::SpanKind::kPlantProbes, sim.now(), sources[k], 0)
            : 0;
    for (size_t i = 0; i < r; ++i) {
      if (edges[i].source != k) m_.send_to(sources[k], tx_c[i]);
    }
    for (size_t i = 0; i < r; ++i) {
      if (edges[i].source == k) txa_sent_at[i] = m_.send_to(sources[k], tx_a[i]);
    }
    // Let this source's txA settle (and propagate) before touching the next
    // source, so other sources still hold txC_i when txA_i arrives.
    sim.run_until(m_.send_backlog_until() + cfg.post_flood_gap);
    if (tracer_ != nullptr) tracer_->close(span, sim.now());
  }

  // p4: detect.
  {
    obs::ScopedPhase phase = timer.phase(obs_.detect_seconds);
    const uint64_t span = tracer_ != nullptr
                              ? tracer_->open_auto(obs::SpanKind::kObserve, sim.now(), r, 0)
                              : 0;
    sim.run_until(sim.now() + cfg.detect_wait);
    if (tracer_ != nullptr) tracer_->close(span, sim.now());
  }
  for (size_t i = 0; i < r; ++i) {
    result.connected[i] =
        cfg.strict_isolation_check
            ? m_.received_only_from(tx_a[i].hash(), sinks[edges[i].sink], txa_sent_at[i])
            : m_.received_from_since(tx_a[i].hash(), sinks[edges[i].sink], txa_sent_at[i]);
    result.txa_planted[i] = net_.node(sources[edges[i].source]).pool().contains(tx_a[i].hash());
    // Verdict classification mirrors measureOneLink: a negative requires
    // the probe state to have existed — txA on the source, the payload
    // (txB, or txA having replaced it) on the sink, txC evicted there.
    const auto& sink_pool = net_.node(sinks[edges[i].sink]).pool();
    const bool payload_on_sink =
        sink_pool.contains(tx_b[i].hash()) || sink_pool.contains(tx_a[i].hash());
    const bool txc_evicted_on_sink = !sink_pool.contains(tx_c[i].hash());
    if (result.connected[i]) {
      result.verdicts[i] = Verdict::kConnected;
      result.causes[i] = obs::ProbeCause::kNone;
    } else if (!result.txa_planted[i] || !payload_on_sink || !txc_evicted_on_sink) {
      result.verdicts[i] = Verdict::kInconclusive;
      // Earliest broken protocol step wins; an offline endpoint explains
      // every downstream failure, so it is checked first.
      if (net_.node(sources[edges[i].source]).unresponsive() ||
          net_.node(sinks[edges[i].sink]).unresponsive()) {
        result.causes[i] = obs::ProbeCause::kNodeOffline;
      } else if (!txc_evicted_on_sink) {
        result.causes[i] = obs::ProbeCause::kTxCNotEvicted;
      } else if (!payload_on_sink) {
        result.causes[i] = obs::ProbeCause::kPayloadNotPlanted;
      } else {
        result.causes[i] = obs::ProbeCause::kTxANotPlanted;
      }
    } else {
      result.verdicts[i] = Verdict::kNegative;
      result.causes[i] = obs::ProbeCause::kTxANeverReturned;
    }
    if (obs_.enabled()) {
      (result.verdicts[i] == Verdict::kConnected
           ? obs_.verdict_connected
           : result.verdicts[i] == Verdict::kNegative ? obs_.verdict_negative
                                                      : obs_.verdict_inconclusive)
          ->inc();
      obs_.trace->push(sim.now(), obs::TraceKind::kTxMeasured, tx_a[i].id,
                       result.connected[i] ? 1 : 0);
    }
  }

  result.finished_at = sim.now();
  result.txs_sent = m_.txs_sent() - sent_before;
  return result;
}

}  // namespace topo::core
