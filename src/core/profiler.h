#pragma once

#include <optional>

#include "mempool/client_profile.h"
#include "mempool/mempool.h"

namespace topo::core {

/// Black-box estimate of a client's mempool parameters (paper Table 3),
/// recovered purely through add() outcomes — the §5.1 "mempool tests" run
/// by node M against a local target node T.
struct ClientProfileEstimate {
  double replace_bump_fraction = 0.0;          ///< R (e.g. 0.10 for Geth)
  uint64_t max_futures_per_account = 0;        ///< U; UINT64_MAX reported as infinity
  bool futures_unbounded = false;              ///< Besu's U = infinity
  size_t min_pending_for_eviction = 0;         ///< P
  size_t capacity = 0;                         ///< L
  bool measurable = false;                     ///< R > 0 (§5.1: zero-R clients
                                               ///< defeat isolation & are flawed)
};

/// Probes a fresh target pool built with `policy`. The probe only calls the
/// public Mempool interface (no policy field is read back), mirroring the
/// paper's black-box tests against instrumented local nodes.
class ClientProfiler {
 public:
  /// `probe_cap` bounds the U/L searches (Besu's unbounded U reports as
  /// infinity once the cap is passed).
  explicit ClientProfiler(uint64_t probe_cap = 1 << 14) : probe_cap_(probe_cap) {}

  ClientProfileEstimate profile(const mempool::MempoolPolicy& policy) const;

  /// Convenience: profile a stock client (Table 3 row).
  ClientProfileEstimate profile(mempool::ClientKind kind) const;

 private:
  size_t measure_capacity(const mempool::MempoolPolicy& policy) const;
  double measure_bump(const mempool::MempoolPolicy& policy) const;
  std::pair<uint64_t, bool> measure_future_limit(const mempool::MempoolPolicy& policy) const;
  size_t measure_min_pending(const mempool::MempoolPolicy& policy, size_t capacity) const;

  uint64_t probe_cap_;
};

}  // namespace topo::core
