#pragma once

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/config.h"
#include "eth/account.h"
#include "eth/transaction.h"
#include "p2p/measurement_node.h"
#include "p2p/network.h"

namespace topo::core {

/// What the pre-processing phase learned about the targets (paper §5.2.3
/// and §6.2.1): nodes to exclude and per-node parameter overrides.
struct PreprocessReport {
  std::unordered_set<p2p::PeerId> future_forwarders;  ///< forward future txs
  std::unordered_set<p2p::PeerId> unresponsive;       ///< never echo anything
  /// Flood size override discovered for nodes with custom mempools.
  std::unordered_map<p2p::PeerId, size_t> flood_override;

  bool excluded(p2p::PeerId n) const {
    return future_forwarders.count(n) > 0 || unresponsive.count(n) > 0;
  }
  std::vector<p2p::PeerId> filter(const std::vector<p2p::PeerId>& targets) const;
};

/// Pre-processing probes, run against the live (simulated) network:
///  - future-forwarder detection: send a future transaction to the target
///    and watch whether it comes back (§6.2.1's monitor-node trick);
///  - responsiveness: send a cheap unique pending transaction and expect
///    the target to echo it to M;
///  - custom-mempool discovery: escalate the flood size Z against a target
///    until a measurement against a controlled local node B' succeeds.
class Preprocessor {
 public:
  Preprocessor(p2p::Network& net, p2p::MeasurementNode& m, eth::AccountManager& accounts,
               eth::TxFactory& factory, MeasureConfig config);

  /// Runs the forwarder + responsiveness probes over all targets.
  PreprocessReport probe(const std::vector<p2p::PeerId>& targets);

  /// Probes one target's effective flood requirement by measuring against
  /// the controlled node `local_b` (which must be linked to `target`) with
  /// escalating Z. Returns the first Z that detects the link, or 0.
  size_t probe_flood_size(p2p::PeerId target, p2p::PeerId local_b,
                          const std::vector<size_t>& z_ladder);

 private:
  p2p::Network& net_;
  p2p::MeasurementNode& m_;
  eth::AccountManager& accounts_;
  eth::TxFactory& factory_;
  MeasureConfig config_;
};

}  // namespace topo::core
