#include "core/session.h"

#include <utility>

namespace topo::core {

template <typename Fn>
auto MeasurementSession::annotated(Fn&& fn) -> Annotated<decltype(fn())> {
  const obs::MetricsSnapshot before = scenario_.snapshot_metrics();
  auto value = fn();
  const obs::MetricsSnapshot after = scenario_.snapshot_metrics();
  return {std::move(value), after.diff_since(before)};
}

Annotated<OneLinkResult> MeasurementSession::one_link(p2p::PeerId a, p2p::PeerId b) {
  return annotated([&] {
    auto strat = scenario_.make_strategy(strategy_, config_);
    strat->prepare(scenario_);
    return strat->measure_pair(a, b);
  });
}

Annotated<ParallelResult> MeasurementSession::parallel(
    const std::vector<p2p::PeerId>& sources, const std::vector<p2p::PeerId>& sinks,
    const std::vector<ParallelEdge>& edges) {
  return annotated([&] {
    auto strat = scenario_.make_strategy(strategy_, config_);
    strat->prepare(scenario_);
    return strat->measure_batch(sources, sinks, edges);
  });
}

Annotated<NetworkMeasurementReport> MeasurementSession::network(size_t group_k,
                                                               const PreprocessReport* pre) {
  return annotated([&] {
    auto strat = scenario_.make_strategy(strategy_, config_);
    strat->prepare(scenario_);
    std::vector<p2p::PeerId> targets = scenario_.targets();
    if (pre != nullptr) {
      targets = pre->filter(targets);
      strat->set_flood_overrides(pre->flood_override);
    }
    NetworkMeasurement nm(*strat);
    return nm.measure_all(scenario_.net(), targets, group_k);
  });
}

Annotated<PreprocessReport> MeasurementSession::preprocess() {
  return annotated([&] { return scenario_.preprocess(config_); });
}

}  // namespace topo::core
