#include "core/session.h"

#include <utility>

namespace topo::core {

template <typename Fn>
auto MeasurementSession::annotated(Fn&& fn) -> Annotated<decltype(fn())> {
  const obs::MetricsSnapshot before = scenario_.snapshot_metrics();
  auto value = fn();
  const obs::MetricsSnapshot after = scenario_.snapshot_metrics();
  return {std::move(value), after.diff_since(before)};
}

Annotated<OneLinkResult> MeasurementSession::one_link(p2p::PeerId a, p2p::PeerId b) {
  return annotated([&] { return scenario_.measure_one_link(a, b, config_); });
}

Annotated<ParallelResult> MeasurementSession::parallel(
    const std::vector<p2p::PeerId>& sources, const std::vector<p2p::PeerId>& sinks,
    const std::vector<ParallelEdge>& edges) {
  return annotated([&] { return scenario_.measure_parallel(sources, sinks, edges, config_); });
}

Annotated<NetworkMeasurementReport> MeasurementSession::network(size_t group_k,
                                                               const PreprocessReport* pre) {
  return annotated([&] { return scenario_.measure_network(group_k, config_, pre); });
}

Annotated<PreprocessReport> MeasurementSession::preprocess() {
  return annotated([&] { return scenario_.preprocess(config_); });
}

}  // namespace topo::core
