#pragma once

#include <cstdint>
#include <unordered_set>

#include "eth/chain.h"

namespace topo::core {

/// Ether/USD accounting of a measurement campaign (paper §5.2.2, §6.4,
/// Table 7). Only transactions actually included in blocks cost Ether;
/// future transactions are never mined and are free.
class CostTracker {
 public:
  /// Registers an account used by the measurement (txC/txA/txB senders).
  void track_account(eth::Address a) { accounts_.insert(a); }
  bool tracks(eth::Address a) const { return accounts_.count(a) > 0; }
  size_t tracked_accounts() const { return accounts_.size(); }

  /// Sums gas * effective price over included transactions from tracked
  /// accounts in blocks with timestamp in the half-open window [t1, t2).
  /// Adjacent windows (0, T), (T, 2T) therefore charge a block stamped
  /// exactly at the seam T exactly once — to the later window. For a
  /// cumulative "everything up to now" read, pass an upper bound strictly
  /// beyond now (+infinity is what the metrics export uses).
  eth::Wei wei_spent(const eth::Chain& chain, double t1, double t2) const;

  /// Count of tracked transactions included in [t1, t2), same convention.
  uint64_t included_txs(const eth::Chain& chain, double t1, double t2) const;

 private:
  std::unordered_set<eth::Address> accounts_;
};

/// Converts and extrapolates costs (Table 7 & the 60 M USD estimate).
struct CostModel {
  double eth_usd = 2690.0;  ///< May 2021 price used for the paper's 1.91 USD/pair

  double wei_to_usd(eth::Wei wei) const {
    return static_cast<double>(wei) / 1e18 * eth_usd;
  }
  double wei_to_ether(eth::Wei wei) const { return static_cast<double>(wei) / 1e18; }

  /// Cost of measuring all pairs of an n-node network given the per-pair
  /// cost (the §6.3 extrapolation: n=8000 at 7.1e-4 Ether/pair -> ~22.8k
  /// Ether -> > 60 M USD).
  double full_network_usd(size_t n, double per_pair_ether) const {
    const double pairs = static_cast<double>(n) * static_cast<double>(n - 1) / 2.0;
    return pairs * per_pair_ether * eth_usd;
  }
  double full_network_ether(size_t n, double per_pair_ether) const {
    const double pairs = static_cast<double>(n) * static_cast<double>(n - 1) / 2.0;
    return pairs * per_pair_ether;
  }
};

}  // namespace topo::core
