#include "core/toposhot.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>

#include "p2p/node.h"

namespace topo::core {

namespace {

mempool::MempoolPolicy scaled_policy(const ScenarioOptions& opt, mempool::ClientKind client) {
  mempool::MempoolPolicy p = mempool::profile_for(client).policy;
  if (opt.mempool_capacity > 0) {
    // Scale the pending-count eviction gate with the capacity (Parity's
    // P = 2000 of L = 8192 stays the same *fraction* of a scaled pool).
    if (p.min_pending_for_eviction > 0 && p.capacity > 0) {
      p.min_pending_for_eviction =
          p.min_pending_for_eviction * opt.mempool_capacity / p.capacity;
    }
    p.capacity = opt.mempool_capacity;
  }
  if (opt.future_cap > 0) p.future_cap = opt.future_cap;
  if (opt.expiry_override > 0.0) p.expiry_seconds = opt.expiry_override;
  p.victim = opt.eviction_victim;
  return p;
}

}  // namespace

Scenario::Scenario(const graph::Graph& topology, ScenarioOptions options)
    : options_(options), truth_(topology), rng_(options.seed),
      metrics_(options.trace_capacity) {
  // Validate against the *effective* policy: mempool_capacity = 0 means the
  // client stock capacity, so the raw option values cannot be compared
  // directly.
  const mempool::MempoolPolicy effective = scaled_policy(options_, options_.client);
  if (options_.background_txs > effective.capacity) {
    throw std::invalid_argument(
        "ScenarioOptions: background_txs (" + std::to_string(options_.background_txs) +
        ") exceeds the effective mempool capacity (" + std::to_string(effective.capacity) +
        "); background seeding would evict itself");
  }
  if (effective.future_cap > effective.capacity) {
    throw std::invalid_argument(
        "ScenarioOptions: future_cap (" + std::to_string(effective.future_cap) +
        ") exceeds the effective mempool capacity (" + std::to_string(effective.capacity) +
        "); the future flood could never fill the pool");
  }

  sim_ = std::make_unique<sim::Simulator>();
  chain_ = std::make_unique<eth::Chain>(options_.block_gas_limit, options_.initial_base_fee);
  net_ = std::make_unique<p2p::Network>(
      sim_.get(), chain_.get(), rng_.split(),
      sim::LatencyModel::lognormal(options_.latency_median, options_.latency_sigma));
  net_->enable_metrics(metrics_);

  util::Rng het = rng_.split();
  p2p::NodeConfig base_cfg;
  base_cfg.client = options_.client;
  base_cfg.policy_override = scaled_policy(options_, options_.client);
  base_cfg.maintenance_interval = options_.maintenance_interval;
  base_cfg.regossip_interval = options_.regossip_interval;
  base_cfg.use_announcements = options_.use_announcements;
  const bool homogeneous = options_.custom_mempool_fraction <= 0.0 &&
                           options_.custom_bump_fraction <= 0.0 &&
                           options_.nonforwarding_fraction <= 0.0;
  if (homogeneous) {
    // The bulk path sharded-campaign replicas take; byte-identical to the
    // per-node loop below (chance(0) draws nothing from `het`).
    targets_ = net_->populate(topology, base_cfg);
  } else {
    for (size_t i = 0; i < topology.num_nodes(); ++i) {
      p2p::NodeConfig cfg = base_cfg;
      mempool::MempoolPolicy policy = *cfg.policy_override;
      if (het.chance(options_.custom_mempool_fraction))
        policy.capacity = options_.custom_capacity;
      if (het.chance(options_.custom_bump_fraction))
        policy.replace_bump_bp = options_.custom_bump_bp;
      cfg.policy_override = policy;
      cfg.forwards_transactions = !het.chance(options_.nonforwarding_fraction);
      targets_.push_back(net_->add_node(cfg));
    }
    for (const auto& [u, v] : topology.edges()) net_->connect(targets_[u], targets_[v]);
  }

  // M's passive view runs the same (scaled) pool policy as the network, so
  // the §5.2.1 median-price estimator tracks the live fee market.
  m_ = std::make_unique<p2p::MeasurementNode>(net_.get(), chain_.get(), options_.send_spacing,
                                              scaled_policy(options_, options_.client));
  net_->register_peer(m_.get());
  m_->connect_to_all();
  m_->set_metrics(metrics_);
}

obs::MetricsSnapshot Scenario::snapshot_metrics() {
  metrics_.gauge("sim.now_seconds").set(sim_->now());
  metrics_.gauge("sim.events_processed").set(static_cast<double>(sim_->processed()));
  metrics_.gauge("sim.queue_depth").set(static_cast<double>(sim_->queued()));
  metrics_.gauge("sim.queue_high_water").set(static_cast<double>(sim_->queue_high_water()));
  // Per-kind dispatch counters: the event-mix fingerprint of the run
  // (scripts/bench_compare.py gates on these to catch event-mix drift).
  const auto& dispatched = sim_->dispatch_counts();
  for (size_t k = 0; k < sim::kNumEventKinds; ++k) {
    metrics_.gauge(std::string("sim.dispatch.") +
                   sim::event_kind_name(static_cast<sim::EventKind>(k)))
        .set(static_cast<double>(dispatched[k]));
  }
  // Backend-specific event-queue internals: meaningful on the timing
  // wheel, all-zero on the legacy heap. Deterministic for a fixed backend,
  // but NOT comparable across backends — determinism checks must strip the
  // sim.queue.impl.* prefix when comparing wheel vs heap runs.
  const sim::EventQueue::Stats& qs = sim_->queue_stats();
  metrics_.gauge("sim.queue.impl.l1_cascades").set(static_cast<double>(qs.l1_cascades));
  metrics_.gauge("sim.queue.impl.overflow_cascaded")
      .set(static_cast<double>(qs.overflow_cascaded));
  metrics_.gauge("sim.queue.impl.overflow_rebuilds")
      .set(static_cast<double>(qs.overflow_rebuilds));
  metrics_.gauge("sim.queue.impl.due_peak").set(static_cast<double>(qs.due_peak));
  metrics_.gauge("sim.queue.impl.overflow_peak").set(static_cast<double>(qs.overflow_peak));
  metrics_.gauge("obs.trace.total_pushed")
      .set(static_cast<double>(metrics_.trace().total_pushed()));
  metrics_.gauge("obs.trace.dropped").set(static_cast<double>(metrics_.trace().dropped()));
  metrics_.gauge("cost.wei_spent")
      .set(static_cast<double>(costs_.wei_spent(*chain_, 0.0, sim_->now())));
  metrics_.gauge("cost.tracked_accounts").set(static_cast<double>(costs_.tracked_accounts()));
  metrics_.gauge("cost.txs_included")
      .set(static_cast<double>(costs_.included_txs(*chain_, 0.0, sim_->now())));
  return metrics_.snapshot();
}

Scenario::~Scenario() = default;

eth::Wei Scenario::sample_organic_price() {
  // Log-uniform prices give a realistic fee spread around the median.
  const double lo = static_cast<double>(options_.background_price_lo);
  const double hi = static_cast<double>(
      std::max(options_.background_price_hi, options_.background_price_lo + 1));
  const double u = rng_.uniform();
  return static_cast<eth::Wei>(std::exp(std::log(lo) + u * (std::log(hi) - std::log(lo))));
}

void Scenario::seed_background() {
  std::vector<eth::Transaction> background;
  background.reserve(options_.background_txs);
  for (size_t i = 0; i < options_.background_txs; ++i) {
    const eth::Address a = accounts_.create_one();
    background.push_back(factory_.make(a, accounts_.allocate_nonce(a), sample_organic_price()));
  }
  net_->seed_mempools(background);
  // Mirror the background into M's passive view so Y estimation works.
  const double now = sim_->now();
  for (const auto& tx : background) m_->view().add(tx, now);
  sim_->run_until(sim_->now() + 1.0);
}

void Scenario::start_organic_traffic(double rate_per_sec) {
  if (rate_per_sec <= 0.0 || targets_.empty()) return;
  organic_on_ = true;
  organic_rate_ = rate_per_sec;
  sim_->schedule_after(rng_.exponential(1.0 / rate_per_sec),
                       sim::Event::typed(sim::EventKind::kCampaignStep, this));
}

void Scenario::on_event(const sim::Event& ev) {
  if (ev.kind != sim::EventKind::kCampaignStep || !organic_on_) return;
  const eth::Address a = accounts_.create_one();
  const auto tx = factory_.make(a, accounts_.allocate_nonce(a), sample_organic_price());
  net_->node(targets_[rng_.index(targets_.size())]).submit(tx);
  sim_->schedule_after(rng_.exponential(1.0 / organic_rate_), ev);
}

p2p::PeerId Scenario::start_churn(double organic_rate, double block_interval,
                                  size_t miner_links) {
  p2p::NodeConfig cfg;
  cfg.client = options_.client;
  cfg.policy_override = scaled_policy(options_, options_.client);
  cfg.maintenance_interval = options_.maintenance_interval;
  const p2p::PeerId miner = net_->add_node(cfg);
  // Wire the miner into the overlay (it is not a measurement target).
  const size_t links = std::min(miner_links, targets_.size());
  for (size_t idx : rng_.sample_indices(targets_.size(), links)) {
    net_->connect(miner, targets_[idx]);
  }
  net_->connect(m_->id(), miner);
  // Give the miner the same background snapshot the rest of the network
  // was seeded with would be ideal; organic traffic fills it quickly, and
  // neighbors gossip their pools on connect.
  net_->start_mining({miner}, block_interval);
  start_organic_traffic(organic_rate);
  return miner;
}

MeasureConfig Scenario::default_measure_config() const {
  MeasureConfig cfg;
  const auto& profile = mempool::profile_for(options_.client);
  cfg.bump_bp = profile.policy.replace_bump_bp;
  const mempool::MempoolPolicy p = scaled_policy(options_, options_.client);
  cfg.flood_Z = p.capacity;
  cfg.futures_per_account_U = std::min<uint64_t>(profile.policy.max_futures_per_account,
                                                 p.capacity);
  cfg.post_flood_gap = options_.maintenance_interval * 2.0 + 0.2;
  cfg.price_Y = 0;  // estimate from M's view
  return cfg;
}

std::unique_ptr<MeasurementStrategy> Scenario::make_strategy(StrategyKind kind,
                                                             const MeasureConfig& cfg) {
  auto strat = ::topo::core::make_strategy(kind, *net_, *m_, accounts_, factory_, cfg);
  strat->set_cost_tracker(&costs_);
  strat->set_metrics(&metrics_);
  strat->set_tracer(tracer_);
  return strat;
}

OneLinkResult Scenario::measure_one_link(p2p::PeerId a, p2p::PeerId b,
                                         const MeasureConfig& cfg) {
  OneLinkMeasurement one(*net_, *m_, accounts_, factory_, cfg);
  one.set_cost_tracker(&costs_);
  one.set_metrics(&metrics_);
  one.set_tracer(tracer_);
  return one.measure(a, b);
}

ParallelResult Scenario::measure_parallel(const std::vector<p2p::PeerId>& sources,
                                          const std::vector<p2p::PeerId>& sinks,
                                          const std::vector<ParallelEdge>& edges,
                                          const MeasureConfig& cfg) {
  ParallelMeasurement par(*net_, *m_, accounts_, factory_, cfg);
  par.set_cost_tracker(&costs_);
  par.set_metrics(&metrics_);
  par.set_tracer(tracer_);
  return par.measure(sources, sinks, edges);
}

NetworkMeasurementReport Scenario::measure_network(size_t group_k, const MeasureConfig& cfg,
                                                   const PreprocessReport* pre) {
  std::unique_ptr<MeasurementStrategy> strat = make_strategy(StrategyKind::kToposhot, cfg);
  std::vector<p2p::PeerId> targets = targets_;
  if (pre != nullptr) {
    // §5.2.3: skip excluded nodes and enlarge the flood for nodes whose
    // custom mempools the pre-processing discovered.
    targets = pre->filter(targets);
    strat->set_flood_overrides(pre->flood_override);
  }
  NetworkMeasurement nm(*strat);
  return nm.measure_all(*net_, targets, group_k);
}

PreprocessReport Scenario::preprocess(const MeasureConfig& cfg) {
  Preprocessor pre(*net_, *m_, accounts_, factory_, cfg);
  return pre.probe(targets_);
}

}  // namespace topo::core
