#include "core/toposhot.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <memory>
#include <stdexcept>
#include <string>
#include <unordered_map>

#include "p2p/node.h"

namespace topo::core {

namespace {

mempool::MempoolPolicy scaled_policy(const ScenarioOptions& opt, mempool::ClientKind client) {
  mempool::MempoolPolicy p = mempool::profile_for(client).policy;
  if (opt.mempool_capacity > 0) {
    // Scale the pending-count eviction gate with the capacity (Parity's
    // P = 2000 of L = 8192 stays the same *fraction* of a scaled pool).
    if (p.min_pending_for_eviction > 0 && p.capacity > 0) {
      p.min_pending_for_eviction =
          p.min_pending_for_eviction * opt.mempool_capacity / p.capacity;
    }
    p.capacity = opt.mempool_capacity;
  }
  if (opt.future_cap > 0) p.future_cap = opt.future_cap;
  if (opt.expiry_override > 0.0) p.expiry_seconds = opt.expiry_override;
  p.victim = opt.eviction_victim;
  return p;
}

}  // namespace

Scenario::Scenario(const graph::Graph& topology, ScenarioOptions options)
    : options_(options), truth_(topology), rng_(options.seed),
      metrics_(options.trace_capacity) {
  // Validate against the *effective* policy: mempool_capacity = 0 means the
  // client stock capacity, so the raw option values cannot be compared
  // directly.
  const mempool::MempoolPolicy effective = scaled_policy(options_, options_.client);
  if (options_.background_txs > effective.capacity) {
    throw std::invalid_argument(
        "ScenarioOptions: background_txs (" + std::to_string(options_.background_txs) +
        ") exceeds the effective mempool capacity (" + std::to_string(effective.capacity) +
        "); background seeding would evict itself");
  }
  if (effective.future_cap > effective.capacity) {
    throw std::invalid_argument(
        "ScenarioOptions: future_cap (" + std::to_string(effective.future_cap) +
        ") exceeds the effective mempool capacity (" + std::to_string(effective.capacity) +
        "); the future flood could never fill the pool");
  }

  sim_ = std::make_unique<sim::Simulator>();
  chain_ = std::make_unique<eth::Chain>(options_.block_gas_limit, options_.initial_base_fee);
  net_ = std::make_unique<p2p::Network>(
      sim_.get(), chain_.get(), rng_.split(),
      sim::LatencyModel::lognormal(options_.latency_median, options_.latency_sigma));
  // Before populate(): connect gossip can send, and every send must see
  // the configured window.
  net_->set_batch_window(options_.batch_window);
  net_->enable_metrics(metrics_);

  util::Rng het = rng_.split();
  p2p::NodeConfig base_cfg;
  base_cfg.client = options_.client;
  base_cfg.policy_override = scaled_policy(options_, options_.client);
  base_cfg.maintenance_interval = options_.maintenance_interval;
  base_cfg.regossip_interval = options_.regossip_interval;
  base_cfg.use_announcements = options_.use_announcements;
  const bool homogeneous = options_.custom_mempool_fraction <= 0.0 &&
                           options_.custom_bump_fraction <= 0.0 &&
                           options_.nonforwarding_fraction <= 0.0;
  if (homogeneous) {
    // The bulk path sharded-campaign replicas take; byte-identical to the
    // per-node loop below (chance(0) draws nothing from `het`).
    targets_ = net_->populate(topology, base_cfg);
  } else {
    for (size_t i = 0; i < topology.num_nodes(); ++i) {
      p2p::NodeConfig cfg = base_cfg;
      mempool::MempoolPolicy policy = *cfg.policy_override;
      if (het.chance(options_.custom_mempool_fraction))
        policy.capacity = options_.custom_capacity;
      if (het.chance(options_.custom_bump_fraction))
        policy.replace_bump_bp = options_.custom_bump_bp;
      cfg.policy_override = policy;
      cfg.forwards_transactions = !het.chance(options_.nonforwarding_fraction);
      targets_.push_back(net_->add_node(cfg));
    }
    for (const auto& [u, v] : topology.edges()) net_->connect(targets_[u], targets_[v]);
  }

  // M's passive view runs the same (scaled) pool policy as the network, so
  // the §5.2.1 median-price estimator tracks the live fee market.
  m_ = std::make_unique<p2p::MeasurementNode>(net_.get(), chain_.get(), options_.send_spacing,
                                              scaled_policy(options_, options_.client));
  net_->register_peer(m_.get());
  m_->connect_to_all();
  m_->set_metrics(metrics_);
}

obs::MetricsSnapshot Scenario::snapshot_metrics() {
  metrics_.gauge("sim.now_seconds").set(sim_->now());
  metrics_.gauge("sim.events_processed").set(static_cast<double>(sim_->processed()));
  metrics_.gauge("sim.queue_depth").set(static_cast<double>(sim_->queued()));
  metrics_.gauge("sim.queue_high_water").set(static_cast<double>(sim_->queue_high_water()));
  // Per-kind dispatch counters: the event-mix fingerprint of the run
  // (scripts/bench_compare.py gates on these to catch event-mix drift).
  const auto& dispatched = sim_->dispatch_counts();
  for (size_t k = 0; k < sim::kNumEventKinds; ++k) {
    metrics_.gauge(std::string("sim.dispatch.") +
                   sim::event_kind_name(static_cast<sim::EventKind>(k)))
        .set(static_cast<double>(dispatched[k]));
  }
  // Backend-specific event-queue internals: meaningful on the timing
  // wheel, all-zero on the legacy heap. Deterministic for a fixed backend,
  // but NOT comparable across backends — determinism checks must strip the
  // sim.queue.impl.* prefix when comparing wheel vs heap runs.
  const sim::EventQueue::Stats& qs = sim_->queue_stats();
  metrics_.gauge("sim.queue.impl.l1_cascades").set(static_cast<double>(qs.l1_cascades));
  metrics_.gauge("sim.queue.impl.overflow_cascaded")
      .set(static_cast<double>(qs.overflow_cascaded));
  metrics_.gauge("sim.queue.impl.overflow_rebuilds")
      .set(static_cast<double>(qs.overflow_rebuilds));
  metrics_.gauge("sim.queue.impl.due_peak").set(static_cast<double>(qs.due_peak));
  metrics_.gauge("sim.queue.impl.overflow_peak").set(static_cast<double>(qs.overflow_peak));
  // Payload-arena high water: most full-tx payloads simultaneously in
  // flight (staged batch members + solo kDeliverTx slots). Identical for
  // batched and unbatched runs — batching changes event count, not the
  // in-flight payload set — and reset per fork like the tombstone peak.
  metrics_.gauge("net.arena_peak").set(static_cast<double>(net_->arena().peak()));
  metrics_.gauge("obs.trace.total_pushed")
      .set(static_cast<double>(metrics_.trace().total_pushed()));
  metrics_.gauge("obs.trace.dropped").set(static_cast<double>(metrics_.trace().dropped()));
  // Cumulative "everything so far" reads: the window convention is
  // half-open [t1, t2), so a block stamped exactly at now() would be
  // excluded by an upper bound of now() — pass +infinity instead.
  const double upper = std::numeric_limits<double>::infinity();
  metrics_.gauge("cost.wei_spent")
      .set(static_cast<double>(costs_.wei_spent(*chain_, 0.0, upper)));
  metrics_.gauge("cost.tracked_accounts").set(static_cast<double>(costs_.tracked_accounts()));
  metrics_.gauge("cost.txs_included")
      .set(static_cast<double>(costs_.included_txs(*chain_, 0.0, upper)));
  return metrics_.snapshot();
}

Scenario::~Scenario() = default;

WorldSnapshot Scenario::snapshot() const {
  WorldSnapshot w;
  w.options = options_;
  w.truth = truth_;
  w.targets = targets_;
  w.rng = rng_;
  w.organic_on = organic_on_;
  w.organic_rate = organic_rate_;

  w.backend = sim_->backend();
  w.now = sim_->now();
  w.events_processed = sim_->processed();
  w.queue_high_water = sim_->queue_high_water();
  w.dispatched = sim_->dispatch_counts();

  // Translate each pending event's sink pointer to symbolic form — the raw
  // pointers die with this world; the fork resolves the symbols against its
  // own objects.
  std::unordered_map<const sim::EventSink*, p2p::PeerId> node_of;
  for (p2p::PeerId id : net_->regular_nodes()) {
    node_of[static_cast<const sim::EventSink*>(&net_->node(id))] = id;
  }
  const auto* net_sink = static_cast<const sim::EventSink*>(net_.get());
  const auto* self_sink = static_cast<const sim::EventSink*>(this);
  const auto pending = sim_->pending_snapshot();
  w.pending.reserve(pending.size());
  for (const auto& sch : pending) {
    if (sch.ev.kind == sim::EventKind::kClosure) {
      throw std::logic_error(
          "Scenario::snapshot: a closure event is pending — closures cannot "
          "be replayed into a forked world (is link churn running?)");
    }
    WorldSnapshot::PendingEvent pe;
    pe.t = sch.t;
    pe.seq = sch.seq;
    pe.kind = sch.ev.kind;
    pe.a = sch.ev.a;
    pe.b = sch.ev.b;
    pe.payload = sch.ev.payload;
    if (sch.ev.sink == net_sink) {
      pe.sink = WorldSnapshot::PendingEvent::Sink::kNetwork;
    } else if (sch.ev.sink == self_sink) {
      pe.sink = WorldSnapshot::PendingEvent::Sink::kScenario;
    } else {
      auto it = node_of.find(sch.ev.sink);
      if (it == node_of.end()) {
        throw std::logic_error(
            "Scenario::snapshot: pending event targets a sink outside this "
            "world (external driver still running?)");
      }
      pe.sink = WorldSnapshot::PendingEvent::Sink::kNode;
      pe.node = it->second;
    }
    w.pending.push_back(pe);
  }

  w.chain = chain_->snapshot();
  w.net = net_->snapshot();
  w.m_id = m_->id();
  w.m = m_->snapshot();

  // Compact every captured queue sequence number — the pending events'
  // plus the staged batch members' reserved ones — to ranks over their
  // union. Absolute seqs mean nothing outside the source queue; ranks
  // preserve the relative (t, seq) total order, which is all the batched
  // drain loop ever compares. A batch's queued event shares the seq of
  // its first undelivered member, so ranking the union keeps them equal.
  std::vector<uint64_t> seqs;
  seqs.reserve(w.pending.size());
  for (const auto& pe : w.pending) seqs.push_back(pe.seq);
  for (const auto& b : w.net.batches) {
    for (const auto& mem : b.members) seqs.push_back(mem.seq);
  }
  std::sort(seqs.begin(), seqs.end());
  seqs.erase(std::unique(seqs.begin(), seqs.end()), seqs.end());
  const auto rank_of = [&seqs](uint64_t s) {
    return static_cast<uint64_t>(
        std::lower_bound(seqs.begin(), seqs.end(), s) - seqs.begin());
  };
  for (auto& pe : w.pending) pe.seq = rank_of(pe.seq);
  for (auto& b : w.net.batches) {
    for (auto& mem : b.members) mem.seq = rank_of(mem.seq);
  }

  w.accounts = accounts_;
  w.factory = factory_;
  w.costs = costs_;

  w.metrics = metrics_.snapshot();
  w.trace_events = metrics_.trace().events();
  w.trace_total = metrics_.trace().total_pushed();
  return w;
}

Scenario::Scenario(const WorldSnapshot& snap)
    : options_(snap.options),
      truth_(snap.truth),
      rng_(snap.rng),
      metrics_(snap.options.trace_capacity),
      accounts_(snap.accounts),
      factory_(snap.factory),
      costs_(snap.costs),
      targets_(snap.targets),
      organic_on_(snap.organic_on),
      organic_rate_(snap.organic_rate) {
  metrics_.restore(snap.metrics);
  metrics_.trace().restore(snap.trace_events, snap.trace_total);

  sim_ = std::make_unique<sim::Simulator>(snap.backend);
  chain_ = std::make_unique<eth::Chain>(options_.block_gas_limit, options_.initial_base_fee);
  chain_->restore(snap.chain);

  // The network RNG rides in the snapshot (restore overwrites the seed
  // passed here); restore() rebuilds the regular nodes without start() or
  // connect() side effects — the warmed world's ticks are re-pushed below.
  net_ = std::make_unique<p2p::Network>(
      sim_.get(), chain_.get(), util::Rng(0),
      sim::LatencyModel::lognormal(options_.latency_median, options_.latency_sigma));
  net_->set_batch_window(options_.batch_window);
  net_->enable_metrics(metrics_);
  net_->restore(snap.net);

  m_ = std::make_unique<p2p::MeasurementNode>(net_.get(), chain_.get(), options_.send_spacing,
                                              scaled_policy(options_, options_.client));
  net_->rebind_external(snap.m_id, m_.get());
  m_->restore(snap.m);
  m_->set_metrics(metrics_);

  // Re-push the captured events under their rank-compacted sequence
  // numbers (schedule_at_seq clamps t against now_ = 0; every captured
  // t >= 0, so timestamps survive intact). The explicit seqs — rather
  // than fresh ones in push order — keep the queue's (t, seq) keys
  // order-consistent with the reserved seqs living inside staged batch
  // members, which were restored by net_->restore above but never appear
  // in the queue. Then advance the seq counter past the whole rank space
  // so future sends sort after everything captured.
  uint64_t seq_floor = 0;
  for (const auto& pe : snap.pending) {
    sim::EventSink* sink = nullptr;
    switch (pe.sink) {
      case WorldSnapshot::PendingEvent::Sink::kNetwork:
        sink = net_.get();
        break;
      case WorldSnapshot::PendingEvent::Sink::kNode:
        sink = &net_->node(pe.node);
        break;
      case WorldSnapshot::PendingEvent::Sink::kScenario:
        sink = this;
        break;
    }
    sim_->schedule_at_seq(pe.t, sim::Event::typed(pe.kind, sink, pe.a, pe.b, pe.payload),
                          pe.seq);
    seq_floor = std::max(seq_floor, pe.seq + 1);
  }
  for (const auto& b : snap.net.batches) {
    for (const auto& mem : b.members) seq_floor = std::max(seq_floor, mem.seq + 1);
  }
  sim_->advance_seq(seq_floor);
  sim_->restore_state(snap.now, snap.events_processed, snap.queue_high_water, snap.dispatched);

  // Peak telemetry is per-world: a replica starts its high-water gauges
  // from the restored level, exactly like a freshly rebuilt world whose
  // warm phase creates no tombstones and leaves no payloads in flight.
  metrics_.gauge("mempool.index.tombstone_peak").restore(0.0, 0.0);
  net_->arena().reset_peak();
  metrics_.gauge("net.arena_peak").restore(0.0, 0.0);
}

std::unique_ptr<Scenario> Scenario::fork(const WorldSnapshot& snap) {
  return std::unique_ptr<Scenario>(new Scenario(snap));
}

void Scenario::reseed(uint64_t seed) {
  rng_ = util::Rng(seed);
  net_->set_rng(rng_.split());
}

eth::Wei Scenario::sample_organic_price() {
  // Log-uniform prices give a realistic fee spread around the median.
  const double lo = static_cast<double>(options_.background_price_lo);
  const double hi = static_cast<double>(
      std::max(options_.background_price_hi, options_.background_price_lo + 1));
  const double u = rng_.uniform();
  return static_cast<eth::Wei>(std::exp(std::log(lo) + u * (std::log(hi) - std::log(lo))));
}

void Scenario::seed_background() {
  std::vector<eth::Transaction> background;
  background.reserve(options_.background_txs);
  for (size_t i = 0; i < options_.background_txs; ++i) {
    const eth::Address a = accounts_.create_one();
    background.push_back(factory_.make(a, accounts_.allocate_nonce(a), sample_organic_price()));
  }
  net_->seed_mempools(background);
  // Mirror the background into M's passive view so Y estimation works.
  const double now = sim_->now();
  for (const auto& tx : background) m_->view().add(tx, now);
  sim_->run_until(sim_->now() + 1.0);
}

void Scenario::start_organic_traffic(double rate_per_sec) {
  if (rate_per_sec <= 0.0 || targets_.empty()) return;
  organic_on_ = true;
  organic_rate_ = rate_per_sec;
  sim_->schedule_after(rng_.exponential(1.0 / rate_per_sec),
                       sim::Event::typed(sim::EventKind::kCampaignStep, this));
}

void Scenario::on_event(const sim::Event& ev) {
  if (ev.kind != sim::EventKind::kCampaignStep || !organic_on_) return;
  const eth::Address a = accounts_.create_one();
  const auto tx = factory_.make(a, accounts_.allocate_nonce(a), sample_organic_price());
  net_->node(targets_[rng_.index(targets_.size())]).submit(tx);
  sim_->schedule_after(rng_.exponential(1.0 / organic_rate_), ev);
}

p2p::PeerId Scenario::start_churn(double organic_rate, double block_interval,
                                  size_t miner_links) {
  p2p::NodeConfig cfg;
  cfg.client = options_.client;
  cfg.policy_override = scaled_policy(options_, options_.client);
  cfg.maintenance_interval = options_.maintenance_interval;
  const p2p::PeerId miner = net_->add_node(cfg);
  // Wire the miner into the overlay (it is not a measurement target).
  const size_t links = std::min(miner_links, targets_.size());
  for (size_t idx : rng_.sample_indices(targets_.size(), links)) {
    net_->connect(miner, targets_[idx]);
  }
  net_->connect(m_->id(), miner);
  // Give the miner the same background snapshot the rest of the network
  // was seeded with would be ideal; organic traffic fills it quickly, and
  // neighbors gossip their pools on connect.
  net_->start_mining({miner}, block_interval);
  start_organic_traffic(organic_rate);
  return miner;
}

MeasureConfig Scenario::default_measure_config() const {
  MeasureConfig cfg;
  const auto& profile = mempool::profile_for(options_.client);
  cfg.bump_bp = profile.policy.replace_bump_bp;
  const mempool::MempoolPolicy p = scaled_policy(options_, options_.client);
  cfg.flood_Z = p.capacity;
  cfg.futures_per_account_U = std::min<uint64_t>(profile.policy.max_futures_per_account,
                                                 p.capacity);
  cfg.post_flood_gap = options_.maintenance_interval * 2.0 + 0.2;
  cfg.price_Y = 0;  // estimate from M's view
  return cfg;
}

std::unique_ptr<MeasurementStrategy> Scenario::make_strategy(StrategyKind kind,
                                                             const MeasureConfig& cfg) {
  auto strat = ::topo::core::make_strategy(kind, *net_, *m_, accounts_, factory_, cfg);
  strat->set_cost_tracker(&costs_);
  strat->set_metrics(&metrics_);
  strat->set_tracer(tracer_);
  return strat;
}

OneLinkResult Scenario::measure_one_link(p2p::PeerId a, p2p::PeerId b,
                                         const MeasureConfig& cfg) {
  OneLinkMeasurement one(*net_, *m_, accounts_, factory_, cfg);
  one.set_cost_tracker(&costs_);
  one.set_metrics(&metrics_);
  one.set_tracer(tracer_);
  return one.measure(a, b);
}

ParallelResult Scenario::measure_parallel(const std::vector<p2p::PeerId>& sources,
                                          const std::vector<p2p::PeerId>& sinks,
                                          const std::vector<ParallelEdge>& edges,
                                          const MeasureConfig& cfg) {
  ParallelMeasurement par(*net_, *m_, accounts_, factory_, cfg);
  par.set_cost_tracker(&costs_);
  par.set_metrics(&metrics_);
  par.set_tracer(tracer_);
  return par.measure(sources, sinks, edges);
}

NetworkMeasurementReport Scenario::measure_network(size_t group_k, const MeasureConfig& cfg,
                                                   const PreprocessReport* pre) {
  std::unique_ptr<MeasurementStrategy> strat = make_strategy(StrategyKind::kToposhot, cfg);
  std::vector<p2p::PeerId> targets = targets_;
  if (pre != nullptr) {
    // §5.2.3: skip excluded nodes and enlarge the flood for nodes whose
    // custom mempools the pre-processing discovered.
    targets = pre->filter(targets);
    strat->set_flood_overrides(pre->flood_override);
  }
  NetworkMeasurement nm(*strat);
  return nm.measure_all(*net_, targets, group_k);
}

PreprocessReport Scenario::preprocess(const MeasureConfig& cfg) {
  Preprocessor pre(*net_, *m_, accounts_, factory_, cfg);
  return pre.probe(targets_);
}

}  // namespace topo::core
