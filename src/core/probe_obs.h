#pragma once

// Interned handles for the measurement-primitive metrics (`probe.*`).
// Shared by the serial (OneLinkMeasurement) and parallel
// (ParallelMeasurement) drivers so their phase timings land in the same
// histograms and the per-link cost analyses see one namespace.

#include "obs/metrics.h"
#include "obs/phase.h"

namespace topo::core {

struct ProbeObs {
  obs::Counter* runs = nullptr;               ///< probe.runs (serial passes)
  obs::Counter* parallel_runs = nullptr;      ///< probe.parallel.runs
  obs::Counter* retries = nullptr;            ///< probe.retries (extra repetitions)
  obs::Counter* remeasures = nullptr;         ///< probe.remeasures (inconclusive retries, per edge)
  obs::Counter* verdict_connected = nullptr;  ///< probe.verdicts.connected
  obs::Counter* verdict_negative = nullptr;   ///< probe.verdicts.negative
  obs::Counter* verdict_inconclusive = nullptr;  ///< probe.verdicts.inconclusive
  obs::Histogram* flood_seconds = nullptr;    ///< probe.phase.flood_seconds
  obs::Histogram* wait_seconds = nullptr;     ///< probe.phase.wait_seconds
  obs::Histogram* plant_seconds = nullptr;    ///< probe.phase.plant_seconds
  obs::Histogram* detect_seconds = nullptr;   ///< probe.phase.detect_seconds
  obs::Histogram* link_seconds = nullptr;     ///< probe.link_seconds (whole call)
  obs::TraceRing* trace = nullptr;

  /// Interns the `probe.*` handles in `reg` (idempotent).
  static ProbeObs wire(obs::MetricsRegistry& reg);

  bool enabled() const { return runs != nullptr; }
};

}  // namespace topo::core
