#pragma once

#include "eth/chain.h"
#include "eth/types.h"
#include "mempool/mempool.h"

namespace topo::core {

/// Estimates the txC gas price Y from the measurement node's passive pool
/// view: the median pending price — low enough not to enter the next block,
/// high enough not to be evicted by organic traffic (paper §5.2.1).
/// Returns `fallback` when the view holds nothing.
eth::Wei estimate_price_Y(const mempool::Mempool& view, eth::Wei fallback = eth::gwei(0.1));

/// The non-interference variant (§6.3 / Appendix C): Y0 must additionally
/// sit below the cheapest price included in recent blocks. Returns
/// min(median estimate, floor_fraction * min_included) — conservatively
/// under the inclusion cut-off.
eth::Wei estimate_price_Y0(const mempool::Mempool& view, eth::Wei min_included_price,
                           double floor_fraction = 0.5, eth::Wei fallback = eth::gwei(0.1));

/// Cheapest effective price included in the chain's most recent
/// `window_blocks` non-empty blocks (0 if none) — the inclusion floor the
/// V2 condition is checked against.
eth::Wei min_included_price(const eth::Chain& chain, size_t window_blocks = 10);

}  // namespace topo::core
