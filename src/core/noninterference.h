#pragma once

#include <unordered_set>
#include <vector>

#include "eth/chain.h"

namespace topo::core {

/// The a-posteriori verification conditions of the mainnet-safe TopoShot
/// extension (paper §6.3 / Appendix C):
///   V1: every block produced in [t1, t2 + e] is full (gas limit filled);
///   V2: every transaction included in that window is priced above Y0.
/// When both hold, Theorem C.2 gives non-interference: the measured world's
/// blocks contain the same transactions as the hypothetical unmeasured one.
struct NonInterferenceCheck {
  bool v1_blocks_full = false;
  bool v2_prices_above_y0 = false;
  size_t blocks_inspected = 0;
  bool holds() const { return v1_blocks_full && v2_prices_above_y0 && blocks_inspected > 0; }
};

/// Verifies V1/V2 over blocks with timestamps in [t1, t2 + expiry_e].
NonInterferenceCheck verify_noninterference(const eth::Chain& chain, double t1, double t2,
                                            double expiry_e, eth::Wei y0);

/// Replay comparison backing the Theorem C.2 experiment: block streams from
/// the measured and unmeasured worlds must contain identical transaction
/// sets per block index, ignoring transactions from `measurement_accounts`
/// (which by V1/V2 never make it into blocks anyway).
bool same_included_transactions(const std::vector<eth::Block>& with_measurement,
                                const std::vector<eth::Block>& without_measurement,
                                const std::unordered_set<eth::Address>& measurement_accounts);

}  // namespace topo::core
