#include "core/profiler.h"

#include <limits>

#include "eth/account.h"
#include "eth/transaction.h"

namespace topo::core {

namespace {

/// Fresh probe environment: an empty pool over a blank chain state.
struct Probe {
  eth::MapState state;
  eth::TxFactory factory;
  eth::AccountManager accounts;
  std::optional<mempool::Mempool> pool;

  explicit Probe(const mempool::MempoolPolicy& policy) { pool.emplace(policy, &state); }

  mempool::AdmitResult add_pending(eth::Wei price) {
    const eth::Address a = accounts.create_one();
    return pool->add(factory.make(a, 0, price), 0.0);
  }
  mempool::AdmitResult add_future(eth::Address a, eth::Nonce nonce, eth::Wei price) {
    return pool->add(factory.make(a, nonce, price), 0.0);
  }
};

}  // namespace

size_t ClientProfiler::measure_capacity(const mempool::MempoolPolicy& policy) const {
  Probe probe(policy);
  // Strictly increasing prices: once the pool is full each further add must
  // evict the cheapest entry, which is the first observable "full" event.
  for (uint64_t i = 0; i < probe_cap_; ++i) {
    const auto result = probe.add_pending(1000 + i);
    if (!result.evicted.empty()) return probe.pool->size();
    if (!result.admitted()) return probe.pool->size();
  }
  return static_cast<size_t>(probe_cap_);
}

double ClientProfiler::measure_bump(const mempool::MempoolPolicy& policy) const {
  constexpr eth::Wei kBase = 1'000'000;
  auto accepts = [&](eth::Wei replacement_price) {
    Probe probe(policy);
    const eth::Address a = probe.accounts.create_one();
    probe.pool->add(probe.factory.make(a, 0, kBase), 0.0);
    const auto result = probe.pool->add(probe.factory.make(a, 0, replacement_price), 0.0);
    return result.code == mempool::AdmitCode::kReplaced;
  };
  // Minimal accepted price in [kBase, 2*kBase]; a client needing more than
  // +100% would be pathological.
  eth::Wei lo = kBase, hi = 2 * kBase;
  if (!accepts(hi)) return 1.0;  // out of probe range
  while (lo < hi) {
    const eth::Wei mid = lo + (hi - lo) / 2;
    if (accepts(mid)) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return static_cast<double>(lo - kBase) / static_cast<double>(kBase);
}

std::pair<uint64_t, bool> ClientProfiler::measure_future_limit(
    const mempool::MempoolPolicy& policy) const {
  Probe probe(policy);
  const eth::Address a = probe.accounts.create_one();
  for (uint64_t i = 0; i < probe_cap_; ++i) {
    // Nonce gap at 0 keeps every probe transaction a future; increasing
    // prices let the probe keep evicting once the pool fills, so only the
    // per-account limit U can stop it.
    const auto result = probe.add_future(a, 1 + i, 5000 + i);
    if (result.code == mempool::AdmitCode::kRejectedFutureLimit) return {i, false};
    if (!result.admitted()) return {i, false};
  }
  return {probe_cap_, true};
}

size_t ClientProfiler::measure_min_pending(const mempool::MempoolPolicy& policy,
                                           size_t capacity) const {
  // Eviction-by-future succeeds iff pending count >= P; binary search the
  // threshold. Each trial rebuilds the pool with exactly `l` pending
  // transactions and capacity - l single-future filler accounts.
  auto evicts = [&](size_t l) {
    Probe probe(policy);
    for (size_t i = 0; i < l; ++i) probe.add_pending(100 + i);
    while (probe.pool->size() < capacity) {
      const eth::Address filler = probe.accounts.create_one();
      const auto result = probe.add_future(filler, 1, 200);
      if (!result.admitted()) return false;  // cannot even build the state
    }
    const eth::Address prober = probe.accounts.create_one();
    const auto result = probe.add_future(prober, 1, 10'000);
    return result.admitted() && !result.evicted.empty();
  };
  size_t lo = 0, hi = capacity;
  if (evicts(0)) return 0;
  if (!evicts(capacity)) return capacity;  // never evicts below full-pending
  while (lo + 1 < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    if (evicts(mid)) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

ClientProfileEstimate ClientProfiler::profile(const mempool::MempoolPolicy& policy) const {
  ClientProfileEstimate est;
  est.capacity = measure_capacity(policy);
  est.replace_bump_fraction = measure_bump(policy);
  const auto [u, unbounded] = measure_future_limit(policy);
  est.max_futures_per_account = unbounded ? std::numeric_limits<uint64_t>::max() : u;
  est.futures_unbounded = unbounded;
  est.min_pending_for_eviction = measure_min_pending(policy, est.capacity);
  est.measurable = est.replace_bump_fraction > 0.0;
  return est;
}

ClientProfileEstimate ClientProfiler::profile(mempool::ClientKind kind) const {
  return profile(mempool::profile_for(kind).policy);
}

}  // namespace topo::core
