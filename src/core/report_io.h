#pragma once

// Persistence for measurement artifacts: topologies and whole-network
// measurement reports serialize to JSON so campaigns can be saved, diffed,
// and re-analyzed without re-measuring (a 12-hour testnet sweep in the
// paper's setting).

#include <optional>
#include <string>

#include "core/schedule.h"
#include "rpc/json.h"

namespace topo::core {

/// Graph <-> JSON ({"nodes": n, "edges": [[u, v], ...]}).
rpc::Json graph_to_json(const graph::Graph& g);
std::optional<graph::Graph> graph_from_json(const rpc::Json& j);

/// Full measurement report <-> JSON (topology + campaign statistics).
rpc::Json report_to_json(const NetworkMeasurementReport& report);
std::optional<NetworkMeasurementReport> report_from_json(const rpc::Json& j);

/// File helpers; return false / nullopt on I/O or parse failure.
bool save_report(const NetworkMeasurementReport& report, const std::string& path);
std::optional<NetworkMeasurementReport> load_report(const std::string& path);

}  // namespace topo::core
