#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "graph/graph.h"

namespace topo::core {

/// Confusion counts for measured links vs ground truth.
struct PrecisionRecall {
  size_t true_positive = 0;
  size_t false_positive = 0;
  size_t false_negative = 0;
  size_t true_negative = 0;

  /// 1.0 when nothing was reported positive (vacuous precision).
  double precision() const {
    const size_t denom = true_positive + false_positive;
    return denom == 0 ? 1.0 : static_cast<double>(true_positive) / static_cast<double>(denom);
  }
  /// 1.0 when there were no real links to find.
  double recall() const {
    const size_t denom = true_positive + false_negative;
    return denom == 0 ? 1.0 : static_cast<double>(true_positive) / static_cast<double>(denom);
  }
  size_t tested() const {
    return true_positive + false_positive + false_negative + true_negative;
  }
  void merge(const PrecisionRecall& o);
};

/// Compares two graphs over the same node indexing, across all node pairs.
PrecisionRecall compare_graphs(const graph::Graph& truth, const graph::Graph& measured);

/// Compares only the explicitly tested pairs: `positives` is the measured
/// subset of `tested`.
PrecisionRecall compare_pairs(const graph::Graph& truth,
                              const std::vector<std::pair<graph::NodeId, graph::NodeId>>& tested,
                              const std::vector<bool>& positives);

}  // namespace topo::core
