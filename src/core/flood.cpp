#include "core/flood.h"

namespace topo::core {

std::vector<eth::Transaction> craft_future_flood(eth::AccountManager& accounts,
                                                 eth::TxFactory& factory,
                                                 const MeasureConfig& cfg, size_t z) {
  std::vector<eth::Transaction> flood;
  flood.reserve(z);
  const MeasureConfig::FloodPlan plan = cfg.flood_plan(z);
  const eth::Wei price = cfg.price_future();
  for (size_t a = 0; a < plan.accounts && flood.size() < z; ++a) {
    const eth::Address acct = accounts.create_one();
    const eth::Nonce base = accounts.future_nonce(acct, 1);  // gap at nonce 0
    for (uint64_t j = 0; j < plan.per_account && flood.size() < z; ++j) {
      flood.push_back(craft_tx(factory, cfg, acct, base + j, price));
    }
  }
  return flood;
}

}  // namespace topo::core
