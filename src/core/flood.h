#pragma once

#include <vector>

#include "core/config.h"
#include "eth/account.h"
#include "eth/transaction.h"

namespace topo::core {

/// Crafts the Step-2 eviction flood (paper §5.2.2): `z` future transactions
/// priced at cfg.price_future(), spread over fresh accounts according to
/// cfg.flood_plan(z). Each account leaves a gap at nonce 0 so every crafted
/// transaction classifies as future on the target.
///
/// This is the single flood-crafting path shared by the one-link and
/// parallel drivers; keeping the U == 0 ("unlimited", one future per
/// account) degeneration here means neither driver can silently craft an
/// empty flood again.
std::vector<eth::Transaction> craft_future_flood(eth::AccountManager& accounts,
                                                 eth::TxFactory& factory,
                                                 const MeasureConfig& cfg, size_t z);

}  // namespace topo::core
