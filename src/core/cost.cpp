#include "core/cost.h"

namespace topo::core {

eth::Wei CostTracker::wei_spent(const eth::Chain& chain, double t1, double t2) const {
  unsigned __int128 total = 0;
  for (const auto* b : chain.blocks_in(t1, t2)) {
    for (const auto& tx : b->txs) {
      if (!accounts_.count(tx.sender)) continue;
      total += static_cast<unsigned __int128>(tx.gas) * tx.effective_price(b->base_fee);
    }
  }
  return static_cast<eth::Wei>(total);
}

uint64_t CostTracker::included_txs(const eth::Chain& chain, double t1, double t2) const {
  uint64_t n = 0;
  for (const auto* b : chain.blocks_in(t1, t2)) {
    for (const auto& tx : b->txs) {
      if (accounts_.count(tx.sender)) ++n;
    }
  }
  return n;
}

}  // namespace topo::core
