#pragma once

#include <optional>
#include <string>

#include "mempool/client_profile.h"

namespace topo::p2p {

/// Per-node behaviour knobs. Defaults model a stock Geth node; the optional
/// overrides model exactly the non-default configurations the paper blames
/// for recall loss (§6.1): custom mempool size, custom price bump,
/// non-forwarding nodes, and future-forwarding misconfigurations (§6.2.1).
struct NodeConfig {
  mempool::ClientKind client = mempool::ClientKind::kGeth;

  /// Replaces the client's stock mempool policy (custom L / R / caps).
  std::optional<mempool::MempoolPolicy> policy_override;

  /// A node that buffers but never forwards transactions (recall culprit 3
  /// in §6.1).
  bool forwards_transactions = true;

  /// Misconfigured node that forwards future transactions (filtered out by
  /// pre-processing in §6.2.1).
  bool forwards_future = false;

  /// Geth >= 1.9.11: push full bodies to sqrt(peers), announce hashes to the
  /// rest (§2). Off = push to everyone (the default protocol).
  bool use_announcements = false;

  /// Bitcoin-style propagation: announce to every peer, push to none. Used
  /// by the §4.1 TxProbe comparison — Ethereum never runs like this, which
  /// is exactly why TxProbe's isolation fails on it.
  bool announce_only = false;

  /// Seconds a peer ignores repeat announcements of a hash it has already
  /// requested (§2 says 5 s).
  double announce_timeout = 5.0;

  /// Cadence of the deferred txpool maintenance loop (Geth's reorg loop):
  /// future-queue truncation, expiry, 1559 pruning.
  double maintenance_interval = 0.1;

  /// Periodic re-gossip of a random pending transaction to a random peer
  /// (models pool re-announcement on reconnect/churn). 0 disables. This is
  /// the txC re-propagation race source discussed in §5.2.1.
  double regossip_interval = 0.0;

  /// Blockchain overlay membership (paper Fig. 1): the devp2p Status
  /// handshake carries a networkID (1 mainnet, 3 Ropsten, 4 Rinkeby,
  /// 5 Goerli); nodes on different networks disconnect at handshake, so
  /// transactions never cross overlays even though the platform overlay
  /// (discovery) is shared.
  uint64_t network_id = 1;

  /// Active-neighbor budget (Geth default ~50).
  size_t max_peers = 50;

  /// Service label for the mainnet critical-subnetwork study ("SrvR1", ...).
  std::string service;

  /// Convenience: the effective mempool policy.
  const mempool::MempoolPolicy& policy() const {
    return policy_override ? *policy_override : mempool::profile_for(client).policy;
  }
};

}  // namespace topo::p2p
