#pragma once

#include <unordered_map>

#include "mempool/mempool.h"
#include "p2p/config.h"
#include "p2p/peer.h"
#include "sim/event.h"
#include "util/rng.h"

namespace topo::p2p {

class Network;

/// A simulated full Ethereum node: mempool + transaction propagation.
///
/// Propagation semantics (paper §2):
///  - admitting a *pending* transaction propagates it to all active
///    neighbors, by direct push, or — with announcements enabled — by
///    pushing to sqrt(peers) and announcing the hash to the rest;
///  - future transactions are admitted but never propagated (unless the
///    node carries the forwards_future misconfiguration);
///  - a peer that requested an announced hash ignores further announcements
///    of it for announce_timeout seconds, but a direct push always bypasses
///    the block (the Ethereum/Bitcoin distinction of §4.1);
///  - futures promoted by a block commit are propagated like fresh pendings.
class Node final : public Peer, public sim::EventSink {
 public:
  Node(NodeConfig config, Network* net, const eth::StateView* state, util::Rng rng);

  /// Frozen per-node state for world forking. The mempool rides behind
  /// copy-on-write handles (Mempool::Snapshot), so capturing a warmed node
  /// is O(1) in pool size.
  struct Snapshot {
    NodeConfig config;
    util::Rng rng;
    bool unresponsive = false;
    mempool::Mempool::Snapshot pool;
    std::unordered_map<eth::TxHash, double> announce_block_until;
    std::unordered_map<eth::TxHash, std::vector<PeerId>> announce_sources;
  };
  Snapshot snapshot() const;

  /// Restore constructor (Network::restore). Does NOT call start(): the
  /// warmed world's maintenance/re-gossip ticks live in the captured event
  /// queue and are re-pushed by the scenario layer.
  Node(const Snapshot& snap, Network* net, const eth::StateView* state);

  /// Starts the maintenance loop (and re-gossip loop if configured). Called
  /// once by the Network after registration.
  void start();

  void deliver_tx(const eth::Transaction& tx, PeerId from) override;
  void deliver_announce(eth::TxHash hash, PeerId from) override;
  void deliver_get_tx(eth::TxHash hash, PeerId from) override;
  void on_peer_connected(PeerId peer) override;
  void on_block_commit() override;

  /// Typed-event dispatch: fetch timeouts, maintenance and re-gossip ticks.
  void on_event(const sim::Event& ev) override;

  /// Local submission (a user RPC sending a transaction to this node).
  mempool::AdmitResult submit(const eth::Transaction& tx);

  mempool::Mempool& pool() { return pool_; }
  const mempool::Mempool& pool() const { return pool_; }
  const NodeConfig& config() const { return config_; }

  /// Mutable behaviour flags — used by validation studies to flip a live
  /// node into a misconfigured one (future-forwarding, non-forwarding).
  /// Mempool policy changes do not retroactively apply to the pool.
  NodeConfig& mutable_config() { return config_; }

  /// Simulated web3_clientVersion RPC (mainnet service discovery, §6.3).
  std::string client_version() const;

  /// Unresponsive nodes drop everything (pre-processing filter target).
  void set_unresponsive(bool v) { unresponsive_ = v; }
  bool unresponsive() const { return unresponsive_; }

  /// Crash/restart: the node comes back with an empty mempool and no
  /// announce-fetcher state, as a real client would after a process
  /// restart. Link state is kept (the overlay re-dials fast relative to
  /// measurement windows).
  void restart();

  /// Live announce-fetcher entries (block windows + recorded fail-over
  /// sources). Bounded by the in-flight fetch set; regression guard for
  /// the unbounded-growth leak.
  size_t announce_fetcher_entries() const {
    return announce_block_until_.size() + announce_sources_.size();
  }

 private:
  void propagate(const eth::Transaction& tx, PeerId exclude);
  void admit_and_propagate(const eth::Transaction& tx, PeerId from);

  NodeConfig config_;
  Network* net_;
  mempool::Mempool pool_;
  util::Rng rng_;
  bool unresponsive_ = false;

  /// Requests `hash` from the next known announcer and schedules a retry
  /// (Geth's tx fetcher: an unanswered GetPooledTransactions falls over to
  /// another announcing peer after the timeout).
  void request_body(eth::TxHash hash);

  /// Forgets all fetcher state for `hash` (body arrived, or every announcer
  /// has been exhausted). Without this both maps grow without bound.
  void prune_fetcher(eth::TxHash hash);

  // hash -> sim time until which further announcements are ignored
  std::unordered_map<eth::TxHash, double> announce_block_until_;
  // hash -> peers that announced it and have not been asked yet
  std::unordered_map<eth::TxHash, std::vector<PeerId>> announce_sources_;
};

}  // namespace topo::p2p
