#pragma once

#include <cstdint>

#include "eth/transaction.h"

namespace topo::p2p {

class Network;

/// Dense id of a participant in the simulated network.
using PeerId = uint32_t;

/// Message-delivery interface every network participant implements. The
/// Network invokes these after the simulated link latency has elapsed.
class Peer {
 public:
  /// Auto-detaches from the Network the peer is registered with (if any):
  /// destroying a registered peer severs its links and leaves an inert sink
  /// in its slot, so messages still in flight deliver harmlessly instead of
  /// through a dangling pointer. Defined in network.cpp.
  virtual ~Peer();

  /// A full transaction pushed by `from` (devp2p Transactions message).
  virtual void deliver_tx(const eth::Transaction& tx, PeerId from) = 0;

  /// A hash announcement (NewPooledTransactionHashes).
  virtual void deliver_announce(eth::TxHash hash, PeerId from) = 0;

  /// A body request for an announced hash (GetPooledTransactions).
  virtual void deliver_get_tx(eth::TxHash hash, PeerId from) = 0;

  /// A new link to `peer` has been established.
  virtual void on_peer_connected(PeerId peer) { (void)peer; }

  /// The shared chain committed a block (state view already updated).
  virtual void on_block_commit() {}

  PeerId id() const { return id_; }

 private:
  friend class Network;
  PeerId id_ = 0;
  /// The network this peer is registered with; set by register_peer, nulled
  /// by detach_peer and by ~Network (whichever comes first).
  Network* registry_ = nullptr;
};

}  // namespace topo::p2p
