#include "p2p/measurement_node.h"

#include <algorithm>

#include "p2p/network.h"

namespace topo::p2p {

MeasurementNode::MeasurementNode(Network* net, const eth::StateView* state, double send_spacing,
                                 std::optional<mempool::MempoolPolicy> view_policy)
    : net_(net),
      view_(view_policy ? *view_policy : mempool::profile_for(mempool::ClientKind::kGeth).policy,
            state),
      send_spacing_(send_spacing) {}

void MeasurementNode::deliver_tx(const eth::Transaction& tx, PeerId from) {
  // Hot under batched delivery: a drained flood batch funnels hundreds of
  // these back-to-back, so read the clock once per delivery.
  const double now = net_->simulator().now();
  log_[tx.hash()].emplace_back(from, now);
  view_.add(tx, now);
}

void MeasurementNode::deliver_announce(eth::TxHash hash, PeerId from) {
  // Always request announced bodies: M wants to observe everything.
  if (view_.contains(hash)) return;
  net_->send_get_tx(id(), from, hash);
}

void MeasurementNode::deliver_get_tx(eth::TxHash hash, PeerId from) {
  // M never serves transactions; it is a passive endpoint.
  (void)hash;
  (void)from;
}

void MeasurementNode::on_block_commit() {
  view_.set_base_fee(net_->chain().base_fee());
  view_.on_block();
}

void MeasurementNode::set_metrics(obs::MetricsRegistry& reg) {
  injected_counter_ = &reg.counter("probe.txs_injected");
  trace_ = &reg.trace();
}

double MeasurementNode::send_to(PeerId peer, const eth::Transaction& tx) {
  auto& sim = net_->simulator();
  next_free_send_ = std::max(next_free_send_, sim.now()) + send_spacing_;
  const double extra = next_free_send_ - sim.now();
  net_->send_tx(id(), peer, tx, extra);
  ++txs_sent_;
  if (injected_counter_ != nullptr) {
    injected_counter_->inc();
    trace_->push(sim.now(), obs::TraceKind::kTxInjected, tx.id, peer);
  }
  return next_free_send_;
}

double MeasurementNode::send_batch_to(PeerId peer, const std::vector<eth::Transaction>& txs) {
  double t = net_->simulator().now();
  for (const auto& tx : txs) t = send_to(peer, tx);
  return t;
}

bool MeasurementNode::received_from(eth::TxHash hash, PeerId peer) const {
  return received_from_since(hash, peer, 0.0);
}

bool MeasurementNode::received_from_since(eth::TxHash hash, PeerId peer, double since) const {
  auto it = log_.find(hash);
  if (it == log_.end()) return false;
  return std::any_of(it->second.begin(), it->second.end(),
                     [&](const auto& rec) { return rec.first == peer && rec.second >= since; });
}

bool MeasurementNode::received_only_from(eth::TxHash hash, PeerId peer, double since) const {
  auto it = log_.find(hash);
  if (it == log_.end()) return false;
  bool from_peer = false;
  for (const auto& rec : it->second) {
    if (rec.second < since) continue;
    if (rec.first != peer) return false;  // leak observed: isolation broken
    from_peer = true;
  }
  return from_peer;
}

std::vector<std::pair<PeerId, double>> MeasurementNode::receptions(eth::TxHash hash) const {
  auto it = log_.find(hash);
  if (it == log_.end()) return {};
  return it->second;
}

void MeasurementNode::clear_log() { log_.clear(); }

void MeasurementNode::connect_to_all() {
  for (PeerId n : net_->regular_nodes()) net_->connect(id(), n);
}

}  // namespace topo::p2p
