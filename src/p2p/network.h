#pragma once

#include <limits>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "eth/chain.h"
#include "graph/graph.h"
#include "mempool/mempool.h"
#include "obs/metrics.h"
#include "p2p/config.h"
#include "p2p/fault_hook.h"
#include "p2p/node.h"
#include "p2p/payload_arena.h"
#include "p2p/peer.h"
#include "sim/latency.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace topo::p2p {

/// Interned message-layer observability handles (all null when metrics are
/// disabled, which costs the hot send paths a single pointer test).
struct NetObs {
  obs::Counter* messages = nullptr;           ///< net.messages (all kinds)
  obs::Counter* messages_tx = nullptr;        ///< full-transaction pushes
  obs::Counter* messages_announce = nullptr;  ///< hash announcements
  obs::Counter* messages_get_tx = nullptr;    ///< body requests
  obs::Counter* bytes = nullptr;              ///< RLP wire bytes
  obs::TraceRing* trace = nullptr;
};

/// The simulated Ethereum blockchain overlay: owns the participants, the
/// link set, and message delivery with per-message latency. Ground truth
/// (the adjacency) is what TopoShot's validator compares measurements
/// against.
///
/// Delivery is scheduled as typed sim::Events (no per-message closure
/// allocation); full-transaction payloads ride in a chunked PayloadArena,
/// so a send costs one arena copy and zero heap traffic in steady state.
///
/// Full-transaction sends on the same directed (from, to) stream within
/// one batch window coalesce into a single kDeliverTxBatch event (see
/// "Batched delivery" in ARCHITECTURE.md). Batching is pure mechanics:
/// each member keeps its exact per-message delivery time and a reserved
/// queue sequence number, the drain loop advances the clock member by
/// member and yields to the queue whenever any other event's (time, seq)
/// key comes first, so the observable trajectory is identical to the
/// one-event-per-message path at any window setting.
class Network : public sim::EventSink {
 public:
  Network(sim::Simulator* sim, eth::Chain* chain, util::Rng rng,
          sim::LatencyModel latency = sim::LatencyModel::lognormal(0.05, 0.4));

  /// Unhooks every registered peer's auto-detach back-reference before the
  /// owned nodes go down (see Peer::~Peer).
  ~Network();

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Creates a regular node; returns its id.
  PeerId add_node(const NodeConfig& config);

  /// Bulk replica construction: one regular node per vertex of `topology`,
  /// all sharing `config`, with every graph edge connected — in graph
  /// order, so two networks populated from the same (topology, seed) are
  /// indistinguishable. This is how sharded campaigns (topo::exec) stamp
  /// out per-worker world replicas. Returns the node ids in vertex order.
  std::vector<PeerId> populate(const graph::Graph& topology, const NodeConfig& config);

  /// Registers an externally owned participant (e.g. a MeasurementNode).
  /// The Network does not take ownership. Lifetime is enforced, not merely
  /// documented: a registered peer that is destroyed first auto-detaches
  /// itself (Peer::~Peer), and a Network destroyed first unhooks every
  /// peer, so neither order leaves a dangling pointer behind.
  PeerId register_peer(Peer* peer);

  /// Severs all links of an externally registered peer and replaces it with
  /// an inert sink, so the peer object may be destroyed while messages are
  /// still in flight. Destroying a registered peer calls this implicitly.
  void detach_peer(PeerId id);

  /// Undirected link management. Returns false on duplicates/self-links —
  /// or when the devp2p Status handshake fails because the two peers run
  /// different blockchain overlays (networkIDs, paper Fig. 1).
  bool connect(PeerId a, PeerId b);

  /// networkID a peer announced at registration (0 = wildcard observer,
  /// e.g. the measurement node, which joins any overlay).
  uint64_t network_id_of(PeerId n) const { return network_id_of_[n]; }
  bool disconnect(PeerId a, PeerId b);
  bool linked(PeerId a, PeerId b) const;
  const std::vector<PeerId>& peers_of(PeerId n) const { return adj_[n]; }

  size_t size() const { return peers_.size(); }
  Node& node(PeerId n);              ///< aborts if n is not a regular Node
  const Node& node(PeerId n) const;
  Peer& peer(PeerId n) { return *peers_[n]; }

  /// Message primitives (latency applied; extra fixed `delay` optional).
  void send_tx(PeerId from, PeerId to, const eth::Transaction& tx, double extra_delay = 0.0);
  void send_announce(PeerId from, PeerId to, eth::TxHash hash);
  void send_get_tx(PeerId from, PeerId to, eth::TxHash hash);

  /// Default per-stream batch window (seconds of delivery time one
  /// kDeliverTxBatch may span).
  static constexpr double kDefaultBatchWindow = 0.25;

  /// Sets the batch window; <= 0 disables batching entirely (every tx
  /// rides its own kDeliverTx event — the reference trajectory the golden
  /// suite compares batched runs against). Batching never changes what is
  /// delivered when; the window only bounds how long one batch's payload
  /// span stays parked in the arena.
  void set_batch_window(double seconds) { batch_window_ = seconds; }
  double batch_window() const { return batch_window_; }

  /// Introspection for tests: directed streams with live FIFO-clock state
  /// (the leak regression), batches currently staged, and the payload
  /// arena itself.
  size_t stream_count() const { return streams_.size(); }
  size_t staged_batches() const { return batches_.size(); }
  const PayloadArena& arena() const { return arena_; }
  PayloadArena& arena() { return arena_; }

  /// Inserts transactions directly into every regular node's pool (steady
  /// state background load; see DESIGN.md on seeding). Skips peers in
  /// `except`.
  void seed_mempools(const std::vector<eth::Transaction>& txs,
                     const std::unordered_set<PeerId>& except = {});

  /// Ground-truth topology over regular nodes only. Node i of the graph is
  /// the i-th *regular* node; use graph_index/peer_of_graph to map.
  graph::Graph snapshot_topology() const;
  /// Graph index of a regular node id (-1 for externally registered peers).
  int64_t graph_index(PeerId n) const;
  /// Peer id of graph node gi.
  PeerId peer_of_graph(size_t gi) const { return regular_[gi]; }
  const std::vector<PeerId>& regular_nodes() const { return regular_; }

  sim::Simulator& simulator() { return *sim_; }
  eth::Chain& chain() { return *chain_; }
  const eth::Chain& chain() const { return *chain_; }
  util::Rng& rng() { return rng_; }

  /// Replaces the network's RNG stream (world-fork reseed: a forked replica
  /// gets a fresh deterministic identity while keeping its warmed state).
  void set_rng(util::Rng rng) { rng_ = rng; }

  /// One staged full-tx delivery: exact delivery time, the queue sequence
  /// number reserved for it at send, and its payload slot in the arena.
  struct BatchMember {
    double t = 0.0;
    uint64_t seq = 0;
    uint32_t slot = 0;
  };

  /// Frozen overlay state for world forking (core::Scenario::snapshot).
  /// Owned-node state rides along (one Node::Snapshot per regular node, in
  /// regular-node order — bulk pool pages behind copy-on-write handles);
  /// externally registered peers are captured as inert slots their owners
  /// re-bind after restore (rebind_external). In-flight transaction
  /// payloads (the arena), the per-stream FIFO clocks, and staged delivery
  /// batches are captured symbolically — batch ids and arena slot handles
  /// are preserved verbatim so the pending kDeliverTxBatch/kDeliverTx
  /// events the scenario re-pushes resolve identically; member *sequence
  /// numbers* are queue-relative, so the scenario layer renumbers them
  /// (rank-compacted together with the pending events' seqs) before the
  /// snapshot leaves the source world. Link churn is closure-scheduled and
  /// deliberately not captured; the scenario layer rejects worlds with
  /// pending closures.
  struct Snapshot {
    /// A staged batch, undelivered members only, in delivery order.
    struct StagedBatch {
      uint64_t id = 0;
      PeerId from = 0;
      PeerId to = 0;
      bool sealed = false;
      bool live_event = false;
      double window_start = 0.0;
      std::vector<BatchMember> members;
    };
    /// One directed stream's FIFO clock (key = from << 32 | to).
    struct StreamClock {
      uint64_t key = 0;
      double last_delivery = 0.0;
      uint64_t open_batch = 0;  ///< 0 = none
      double window_start = 0.0;
    };

    util::Rng rng;
    std::vector<Node::Snapshot> nodes;  ///< aligned with `regular`
    std::vector<PeerId> regular;
    std::vector<std::vector<PeerId>> adj;
    std::vector<uint64_t> network_id_of;
    uint64_t messages = 0;
    uint64_t bytes = 0;
    bool mining_on = false;
    size_t next_miner = 0;
    std::vector<PeerId> miners;
    double mine_interval = 0.0;
    PayloadArena::Snapshot arena;
    std::vector<StreamClock> streams;   ///< sorted by key
    std::vector<StagedBatch> batches;   ///< sorted by id
    uint64_t next_batch_id = 1;
  };
  Snapshot snapshot() const;

  /// Rebuilds the participant set from a snapshot. Must be called on a
  /// freshly constructed network (no nodes added). Regular nodes are
  /// reconstructed through their restore constructor — no start() ticks and
  /// no connect() gossip; the warmed world's pending events live in the
  /// captured simulator queue and are re-pushed by the scenario. External
  /// slots deliver into an inert sink until rebind_external.
  void restore(const Snapshot& snap);

  /// Re-binds an externally owned peer into the slot it held in the
  /// snapshotted world (pairs with restore()).
  void rebind_external(PeerId id, Peer* peer);

  /// Commits a block mined from node `miner`'s pending snapshot and fans
  /// out on_block_commit to every participant.
  const eth::Block& mine_block(PeerId miner);

  /// Schedules periodic mining every `interval` seconds (round-robin over
  /// `miners`), for the lifetime of the run.
  void start_mining(std::vector<PeerId> miners, double interval);
  void stop_mining() { mining_on_ = false; }

  /// Peer churn: at `events_per_sec` (Poisson), a random active link
  /// between regular nodes drops and a random non-adjacent pair dials a
  /// replacement. Reconnect gossip (pool announcements to the new peer) is
  /// exactly the txC re-propagation hazard of §5.2.1; link loss is what
  /// erodes long-running measurements.
  void start_link_churn(double events_per_sec);
  void stop_link_churn() { churn_on_ = false; }
  uint64_t churn_events() const { return churn_events_; }

  /// Wires message-volume and (shared, aggregate) mempool instrumentation
  /// into `reg`. Nodes that already exist are wired retroactively; nodes
  /// added later inherit the handles. The registry must outlive the
  /// network.
  void enable_metrics(obs::MetricsRegistry& reg);

  /// Null when metrics are disabled.
  obs::TraceRing* obs_trace() const { return obs_.trace; }

  /// Installs (or removes, with nullptr) a message-path fault hook. The
  /// hook is consulted on every send; dropped messages are counted as sent
  /// (wire bytes were spent) but never delivered. The hook must outlive
  /// its installation; no hook means the pre-fault send paths, unchanged.
  void set_fault_hook(FaultHook* hook) { fault_ = hook; }
  FaultHook* fault_hook() const { return fault_; }

  /// Total messages delivered (diagnostics).
  uint64_t messages_delivered() const { return messages_; }

  /// Total wire bytes sent, sized by the RLP codec (devp2p framing):
  /// bandwidth accounting for the measurement-overhead analyses.
  uint64_t bytes_sent() const { return bytes_; }

  /// Typed-event dispatch: message deliveries, block commits, mining ticks.
  void on_event(const sim::Event& ev) override;

 private:
  sim::Simulator* sim_;
  eth::Chain* chain_;
  util::Rng rng_;
  sim::LatencyModel latency_;

  std::vector<Peer*> peers_;                   // all participants (non-owning view)
  std::vector<std::unique_ptr<Node>> owned_;   // regular nodes we own
  std::vector<PeerId> regular_;                // ids of regular nodes, insert order
  std::vector<std::vector<PeerId>> adj_;
  std::vector<std::unordered_set<PeerId>> adj_set_;
  std::vector<uint64_t> network_id_of_;
  NetObs obs_;
  FaultHook* fault_ = nullptr;
  mempool::PoolObs pool_obs_;  ///< shared by every owned node's pool
  bool metrics_enabled_ = false;
  uint64_t messages_ = 0;
  uint64_t bytes_ = 0;
  bool mining_on_ = false;
  size_t next_miner_ = 0;
  std::vector<PeerId> miners_;  ///< round-robin order for kMineTick
  double mine_interval_ = 0.0;
  bool churn_on_ = false;
  uint64_t churn_events_ = 0;

  static uint64_t stream_key(PeerId from, PeerId to) {
    return (static_cast<uint64_t>(from) << 32) | to;
  }

  /// Per directed (from, to) stream: the FIFO delivery clock — messages
  /// share a TCP connection in the real protocol, so a later send can
  /// never overtake an earlier one — plus the id of the batch currently
  /// accepting members (0 = none) and the delivery time of the send that
  /// opened the current window. Batches open lazily: the window's first
  /// send ships as a plain kDeliverTx (a single-send stream, the common
  /// case in a one-tx flood, pays zero batching overhead) and a batch is
  /// created only when a second send lands inside the window. Entries are
  /// pruned on disconnect; a re-established link starts with a fresh clock
  /// instead of being pushed out by a long-dead link's stale one.
  struct StreamState {
    double last_delivery = 0.0;
    uint64_t open_batch = 0;
    double window_start = -std::numeric_limits<double>::infinity();
  };

  /// A staged per-stream delivery batch. `members[next..]` are the
  /// undelivered staged sends, strictly increasing in both t and seq;
  /// `live_event` says a kDeliverTxBatch event (scheduled at exactly the
  /// first undelivered member's (t, seq)) is in the queue or currently
  /// mid-dispatch in the drain loop — the flag stays set for the whole
  /// drain so prune_stream (reachable from a delivery that detaches a
  /// peer) never erases a batch the loop still references. Sealed batches
  /// no longer accept members (their stream disconnected, rolled its
  /// window, or opened a newer batch) and are erased once drained.
  struct TxBatch {
    PeerId from = 0;
    PeerId to = 0;
    bool sealed = false;
    bool live_event = false;
    double window_start = 0.0;
    size_t next = 0;
    std::vector<BatchMember> members;
  };

  /// Enforces the per-stream FIFO clock and returns the delivery time
  /// (announce/get-tx path; send_tx inlines it to keep the stream handle).
  double fifo_delivery_time(PeerId from, PeerId to, double delay);

  /// Routes one send through the stream's window: the window's first send
  /// goes out as a plain kDeliverTx; a second send inside the window opens
  /// a batch (keeping its queue event pinned to the first undelivered
  /// member), and later sends join it until the window rolls.
  void stage_tx(StreamState& ss, PeerId from, PeerId to, double at, uint32_t slot);

  /// Drops a departing stream: seals its open batch (in-flight members
  /// still deliver) and erases the FIFO clock.
  void prune_stream(PeerId from, PeerId to);

  PayloadArena arena_;  ///< in-flight full-tx payloads (kDeliverTx + staged batches)
  std::unordered_map<uint64_t, StreamState> streams_;
  std::unordered_map<uint64_t, TxBatch> batches_;  ///< by batch id
  uint64_t next_batch_id_ = 1;
  double batch_window_ = kDefaultBatchWindow;
};

}  // namespace topo::p2p
