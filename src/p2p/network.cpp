#include "p2p/network.h"

#include <algorithm>
#include <cassert>
#include <cstddef>

#include "eth/miner.h"
#include "p2p/node.h"
#include "wire/messages.h"

namespace topo::p2p {

Peer::~Peer() {
  if (registry_ != nullptr) registry_->detach_peer(id_);
}

Network::Network(sim::Simulator* sim, eth::Chain* chain, util::Rng rng, sim::LatencyModel latency)
    : sim_(sim), chain_(chain), rng_(rng), latency_(latency) {
  assert(sim_ != nullptr && chain_ != nullptr);
}

Network::~Network() {
  // Unhook every registered peer before members start dying: the owned
  // nodes' ~Peer must not detach into a half-destroyed network, and
  // externally owned peers that outlive us must not dangle into it later.
  for (Peer* p : peers_) {
    if (p != nullptr && p->registry_ == this) p->registry_ = nullptr;
  }
}

PeerId Network::add_node(const NodeConfig& config) {
  auto node = std::make_unique<Node>(config, this, chain_, rng_.split());
  Node* raw = node.get();
  owned_.push_back(std::move(node));
  const PeerId id = register_peer(raw);
  network_id_of_[id] = config.network_id;
  regular_.push_back(id);
  if (metrics_enabled_) raw->pool().set_obs(&pool_obs_);
  raw->start();
  return id;
}

std::vector<PeerId> Network::populate(const graph::Graph& topology, const NodeConfig& config) {
  std::vector<PeerId> ids;
  ids.reserve(topology.num_nodes());
  for (size_t i = 0; i < topology.num_nodes(); ++i) ids.push_back(add_node(config));
  for (const auto& [u, v] : topology.edges()) connect(ids[u], ids[v]);
  return ids;
}

void Network::enable_metrics(obs::MetricsRegistry& reg) {
  obs_.messages = &reg.counter("net.messages");
  obs_.messages_tx = &reg.counter("net.messages.tx");
  obs_.messages_announce = &reg.counter("net.messages.announce");
  obs_.messages_get_tx = &reg.counter("net.messages.get_tx");
  obs_.bytes = &reg.counter("net.bytes");
  obs_.trace = &reg.trace();
  pool_obs_ = mempool::PoolObs::wire(reg);
  metrics_enabled_ = true;
  for (auto& node : owned_) node->pool().set_obs(&pool_obs_);
}

PeerId Network::register_peer(Peer* peer) {
  const PeerId id = static_cast<PeerId>(peers_.size());
  peer->id_ = id;
  peer->registry_ = this;
  peers_.push_back(peer);
  adj_.emplace_back();
  adj_set_.emplace_back();
  network_id_of_.push_back(0);  // externally registered peers observe any overlay
  return id;
}

namespace {

/// Inert stand-in for detached peers.
class SinkPeer final : public Peer {
 public:
  void deliver_tx(const eth::Transaction&, PeerId) override {}
  void deliver_announce(eth::TxHash, PeerId) override {}
  void deliver_get_tx(eth::TxHash, PeerId) override {}
};

/// Shared inert sink occupying detached (and not-yet-rebound) peer slots.
Peer& detached_sink() {
  static SinkPeer sink;
  return sink;
}

}  // namespace

void Network::detach_peer(PeerId id) {
  if (peers_[id]->registry_ == this) peers_[id]->registry_ = nullptr;
  while (!adj_[id].empty()) disconnect(id, adj_[id].back());
  peers_[id] = &detached_sink();
}

bool Network::connect(PeerId a, PeerId b) {
  if (a == b || a >= peers_.size() || b >= peers_.size()) return false;
  if (adj_set_[a].count(b)) return false;
  // Simulated Status handshake (paper Fig. 1): different blockchain
  // overlays disconnect immediately. networkID 0 is the wildcard observer.
  const uint64_t net_a = network_id_of_[a];
  const uint64_t net_b = network_id_of_[b];
  if (net_a != 0 && net_b != 0 && net_a != net_b) return false;
  adj_set_[a].insert(b);
  adj_set_[b].insert(a);
  adj_[a].push_back(b);
  adj_[b].push_back(a);
  peers_[a]->on_peer_connected(b);
  peers_[b]->on_peer_connected(a);
  return true;
}

bool Network::disconnect(PeerId a, PeerId b) {
  if (a >= peers_.size() || b >= peers_.size() || !adj_set_[a].count(b)) return false;
  adj_set_[a].erase(b);
  adj_set_[b].erase(a);
  auto drop = [](std::vector<PeerId>& v, PeerId x) {
    v.erase(std::find(v.begin(), v.end(), x));
  };
  drop(adj_[a], b);
  drop(adj_[b], a);
  // The link's FIFO clocks die with it (churned campaigns must not grow
  // the stream map without bound, and a re-dialed link must not inherit a
  // stale clock); anything already in flight still delivers.
  prune_stream(a, b);
  prune_stream(b, a);
  return true;
}

void Network::prune_stream(PeerId from, PeerId to) {
  auto it = streams_.find(stream_key(from, to));
  if (it == streams_.end()) return;
  if (it->second.open_batch != 0) {
    auto bit = batches_.find(it->second.open_batch);
    assert(bit != batches_.end());
    // Seal rather than drop: staged members are already "on the wire".
    // Sealing matters for correctness, not just hygiene — a reconnect
    // restarts the FIFO clock, so later sends may deliver *earlier* than
    // the staged members and must go into a fresh batch to keep each
    // batch's member times monotone.
    bit->second.sealed = true;
    if (!bit->second.live_event) {
      // Fully drained already; nothing in flight references it.
      assert(bit->second.next >= bit->second.members.size());
      batches_.erase(bit);
    }
  }
  streams_.erase(it);
}

bool Network::linked(PeerId a, PeerId b) const {
  if (a >= peers_.size() || b >= peers_.size()) return false;
  return adj_set_[a].count(b) > 0;
}

Node& Network::node(PeerId n) {
  Node* p = dynamic_cast<Node*>(peers_[n]);
  assert(p != nullptr && "peer id does not refer to a regular Node");
  return *p;
}

const Node& Network::node(PeerId n) const {
  const Node* p = dynamic_cast<const Node*>(peers_[n]);
  assert(p != nullptr && "peer id does not refer to a regular Node");
  return *p;
}

double Network::fifo_delivery_time(PeerId from, PeerId to, double delay) {
  double& last = streams_[stream_key(from, to)].last_delivery;
  const double at = std::max(sim_->now() + delay, last + 1e-6);
  last = at;
  return at;
}

void Network::send_tx(PeerId from, PeerId to, const eth::Transaction& tx, double extra_delay) {
  ++messages_;
  const uint64_t size = wire::transaction_wire_size(tx);
  bytes_ += size;
  if (obs_.messages != nullptr) {
    obs_.messages->inc();
    obs_.messages_tx->inc();
    obs_.bytes->inc(size);
  }
  double lat = latency_.sample(rng_);
  if (fault_ != nullptr) {
    // Dropped messages stay in the sent tallies (the wire bytes were
    // spent); they just never schedule a delivery or hold an arena slot —
    // a drop mid-window simply leaves a smaller batch behind.
    if (fault_->should_drop(MsgKind::kTx, from, to)) return;
    lat *= fault_->latency_multiplier(MsgKind::kTx, from, to);
  }
  StreamState& ss = streams_[stream_key(from, to)];
  const double at = std::max(sim_->now() + lat + extra_delay, ss.last_delivery + 1e-6);
  ss.last_delivery = at;
  const uint32_t slot = arena_.acquire(tx);
  if (batch_window_ <= 0.0) {
    sim_->schedule_at(at, sim::Event::typed(sim::EventKind::kDeliverTx, this, to, from, slot));
    return;
  }
  stage_tx(ss, from, to, at, slot);
}

void Network::stage_tx(StreamState& ss, PeerId from, PeerId to, double at, uint32_t slot) {
  if (ss.open_batch != 0) {
    TxBatch& b = batches_[ss.open_batch];
    if (at - b.window_start <= batch_window_) {
      // Reserved at the instant the unbatched path would have pushed, so
      // the member's (t, seq) key — and therefore its position in the
      // global total order — is exactly what the one-event-per-message
      // trajectory would use.
      const uint64_t seq = sim_->reserve_seq();
      b.members.push_back(BatchMember{at, seq, slot});
      if (!b.live_event) {
        sim_->schedule_at_seq(
            at, sim::Event::typed(sim::EventKind::kDeliverTxBatch, this, to, from, ss.open_batch),
            seq);
        b.live_event = true;
      }
      return;
    }
    // Window rolled over: seal (in-flight members keep delivering through
    // the old batch) and fall through to the plain first-send regime.
    b.sealed = true;
    ss.open_batch = 0;
  } else if (at - ss.window_start <= batch_window_) {
    // Second send inside the window: batching starts to pay, so open a
    // batch for this and subsequent members. The window's opener already
    // shipped as a plain kDeliverTx and is not a member; the window stays
    // anchored at its delivery time.
    const uint64_t seq = sim_->reserve_seq();
    ss.open_batch = next_batch_id_++;
    TxBatch& b = batches_[ss.open_batch];
    b.from = from;
    b.to = to;
    b.window_start = ss.window_start;
    b.members.push_back(BatchMember{at, seq, slot});
    sim_->schedule_at_seq(
        at, sim::Event::typed(sim::EventKind::kDeliverTxBatch, this, to, from, ss.open_batch),
        seq);
    b.live_event = true;
    return;
  }
  // First send of a fresh window: one plain event, zero staging overhead —
  // a single-send stream (every stream, in a one-tx flood) never touches
  // the batch map at all.
  ss.window_start = at;
  sim_->schedule_at(at, sim::Event::typed(sim::EventKind::kDeliverTx, this, to, from, slot));
}

void Network::send_announce(PeerId from, PeerId to, eth::TxHash hash) {
  ++messages_;
  bytes_ += wire::announcement_wire_size();
  if (obs_.messages != nullptr) {
    obs_.messages->inc();
    obs_.messages_announce->inc();
    obs_.bytes->inc(wire::announcement_wire_size());
  }
  double lat = latency_.sample(rng_);
  if (fault_ != nullptr) {
    if (fault_->should_drop(MsgKind::kAnnounce, from, to)) return;
    lat *= fault_->latency_multiplier(MsgKind::kAnnounce, from, to);
  }
  const double at = fifo_delivery_time(from, to, lat);
  sim_->schedule_at(at, sim::Event::typed(sim::EventKind::kDeliverAnnounce, this, to, from, hash));
}

void Network::send_get_tx(PeerId from, PeerId to, eth::TxHash hash) {
  ++messages_;
  bytes_ += wire::announcement_wire_size();
  if (obs_.messages != nullptr) {
    obs_.messages->inc();
    obs_.messages_get_tx->inc();
    obs_.bytes->inc(wire::announcement_wire_size());
  }
  double lat = latency_.sample(rng_);
  if (fault_ != nullptr) {
    if (fault_->should_drop(MsgKind::kGetTx, from, to)) return;
    lat *= fault_->latency_multiplier(MsgKind::kGetTx, from, to);
  }
  const double at = fifo_delivery_time(from, to, lat);
  sim_->schedule_at(at, sim::Event::typed(sim::EventKind::kDeliverGetTx, this, to, from, hash));
}

void Network::seed_mempools(const std::vector<eth::Transaction>& txs,
                            const std::unordered_set<PeerId>& except) {
  const double now = sim_->now();
  for (PeerId id : regular_) {
    if (except.count(id)) continue;
    auto& pool = node(id).pool();
    for (const auto& tx : txs) pool.add(tx, now);
  }
}

graph::Graph Network::snapshot_topology() const {
  graph::Graph g(regular_.size());
  std::vector<int64_t> remap(peers_.size(), -1);
  for (size_t i = 0; i < regular_.size(); ++i) remap[regular_[i]] = static_cast<int64_t>(i);
  for (size_t i = 0; i < regular_.size(); ++i) {
    for (PeerId nbr : adj_[regular_[i]]) {
      const int64_t j = remap[nbr];
      if (j >= 0 && static_cast<int64_t>(i) < j)
        g.add_edge(static_cast<graph::NodeId>(i), static_cast<graph::NodeId>(j));
    }
  }
  return g;
}

int64_t Network::graph_index(PeerId n) const {
  for (size_t i = 0; i < regular_.size(); ++i) {
    if (regular_[i] == n) return static_cast<int64_t>(i);
  }
  return -1;
}

const eth::Block& Network::mine_block(PeerId miner) {
  eth::Block b;
  b.timestamp = sim_->now();
  b.miner_node = miner;
  const auto candidates = node(miner).pool().pending_snapshot();
  b.txs = eth::pack_block(candidates, *chain_, chain_->gas_limit(), chain_->base_fee());
  const eth::Block& committed = chain_->commit(std::move(b));
  // Block propagation is fast relative to the 13 s interval; deliver the
  // commit to every participant after one link latency.
  for (PeerId i = 0; i < peers_.size(); ++i) {
    sim_->schedule_after(latency_.sample(rng_),
                         sim::Event::typed(sim::EventKind::kBlockCommit, this, i));
  }
  return committed;
}

void Network::start_link_churn(double events_per_sec) {
  if (events_per_sec <= 0.0 || regular_.size() < 4) return;
  churn_on_ = true;
  auto tick = std::make_shared<std::function<void()>>();
  *tick = [this, events_per_sec, tick] {
    if (!churn_on_) return;
    // Drop one random link between regular nodes.
    std::unordered_set<PeerId> regular_set(regular_.begin(), regular_.end());
    for (int attempt = 0; attempt < 16; ++attempt) {
      const PeerId u = regular_[rng_.index(regular_.size())];
      if (adj_[u].empty()) continue;
      const PeerId v = adj_[u][rng_.index(adj_[u].size())];
      if (!regular_set.count(v)) continue;  // never churn measurement links
      disconnect(u, v);
      ++churn_events_;
      break;
    }
    // Dial one random replacement link (reconnect gossip fires).
    for (int attempt = 0; attempt < 16; ++attempt) {
      const PeerId a = regular_[rng_.index(regular_.size())];
      const PeerId b = regular_[rng_.index(regular_.size())];
      if (a == b || linked(a, b)) continue;
      connect(a, b);
      break;
    }
    sim_->after(rng_.exponential(1.0 / events_per_sec), *tick);
  };
  sim_->after(rng_.exponential(1.0 / events_per_sec), *tick);
}

Network::Snapshot Network::snapshot() const {
  Snapshot s;
  s.rng = rng_;
  s.nodes.reserve(regular_.size());
  for (PeerId id : regular_) s.nodes.push_back(node(id).snapshot());
  s.regular = regular_;
  s.adj = adj_;
  s.network_id_of = network_id_of_;
  s.messages = messages_;
  s.bytes = bytes_;
  s.mining_on = mining_on_;
  s.next_miner = next_miner_;
  s.miners = miners_;
  s.mine_interval = mine_interval_;
  s.arena = arena_.snapshot();
  s.streams.reserve(streams_.size());
  for (const auto& [key, ss] : streams_) {
    s.streams.push_back(Snapshot::StreamClock{key, ss.last_delivery, ss.open_batch, ss.window_start});
  }
  std::sort(s.streams.begin(), s.streams.end(),
            [](const auto& a, const auto& b) { return a.key < b.key; });
  s.batches.reserve(batches_.size());
  for (const auto& [id, b] : batches_) {
    Snapshot::StagedBatch sb;
    sb.id = id;
    sb.from = b.from;
    sb.to = b.to;
    sb.sealed = b.sealed;
    sb.live_event = b.live_event;
    sb.window_start = b.window_start;
    sb.members.assign(b.members.begin() + static_cast<std::ptrdiff_t>(b.next), b.members.end());
    s.batches.push_back(std::move(sb));
  }
  std::sort(s.batches.begin(), s.batches.end(),
            [](const auto& a, const auto& b) { return a.id < b.id; });
  s.next_batch_id = next_batch_id_;
  return s;
}

void Network::restore(const Snapshot& snap) {
  assert(peers_.empty() && "restore() requires a freshly constructed network");
  rng_ = snap.rng;
  const size_t total = snap.adj.size();
  // Every slot starts as the inert sink; regular nodes fill theirs below,
  // external owners re-bind theirs via rebind_external.
  peers_.assign(total, &detached_sink());
  adj_ = snap.adj;
  adj_set_.assign(total, {});
  for (size_t i = 0; i < total; ++i) {
    adj_set_[i] = std::unordered_set<PeerId>(adj_[i].begin(), adj_[i].end());
  }
  network_id_of_ = snap.network_id_of;
  regular_ = snap.regular;
  owned_.reserve(regular_.size());
  for (size_t i = 0; i < regular_.size(); ++i) {
    // Restore constructor: no start() ticks, no connect() gossip — the
    // warmed world's pending events are re-pushed by the scenario layer.
    auto node = std::make_unique<Node>(snap.nodes[i], this, chain_);
    node->id_ = regular_[i];
    node->registry_ = this;
    if (metrics_enabled_) node->pool().set_obs(&pool_obs_);
    peers_[regular_[i]] = node.get();
    owned_.push_back(std::move(node));
  }
  messages_ = snap.messages;
  bytes_ = snap.bytes;
  mining_on_ = snap.mining_on;
  next_miner_ = snap.next_miner;
  miners_ = snap.miners;
  mine_interval_ = snap.mine_interval;
  arena_.restore(snap.arena);
  streams_.clear();
  for (const auto& sc : snap.streams) {
    streams_[sc.key] = StreamState{sc.last_delivery, sc.open_batch, sc.window_start};
  }
  batches_.clear();
  for (const auto& sb : snap.batches) {
    TxBatch b;
    b.from = sb.from;
    b.to = sb.to;
    b.sealed = sb.sealed;
    b.live_event = sb.live_event;
    b.window_start = sb.window_start;
    b.members = sb.members;
    batches_[sb.id] = std::move(b);
  }
  next_batch_id_ = snap.next_batch_id;
}

void Network::rebind_external(PeerId id, Peer* peer) {
  assert(id < peers_.size() && "rebind_external: no such slot");
  peer->id_ = id;
  peer->registry_ = this;
  peers_[id] = peer;
}

void Network::start_mining(std::vector<PeerId> miners, double interval) {
  if (miners.empty()) return;
  mining_on_ = true;
  next_miner_ = 0;
  miners_ = std::move(miners);
  mine_interval_ = interval;
  sim_->schedule_after(interval, sim::Event::typed(sim::EventKind::kMineTick, this));
}

void Network::on_event(const sim::Event& ev) {
  switch (ev.kind) {
    case sim::EventKind::kDeliverTx: {
      // Copy out and release the slot before delivering: propagation inside
      // deliver_tx may send again and reuse the slot.
      const uint32_t slot = static_cast<uint32_t>(ev.payload);
      const eth::Transaction tx = arena_.take(slot);
      peers_[ev.a]->deliver_tx(tx, ev.b);
      break;
    }
    case sim::EventKind::kDeliverTxBatch: {
      // Deliveries below can propagate (admit -> send_tx -> stage_tx) and
      // insert new entries into batches_; a rehash invalidates every
      // iterator into the map (references survive, iterators do not). So:
      // only the reference `b` may outlive a deliver_tx call — the batch is
      // re-found or erased *by key* (ev.payload) after the loop, never via
      // the pre-drain iterator. `live_event` also stays true for the whole
      // dispatch: a delivery that detaches ev.a runs prune_stream on this
      // stream, and a false flag there would erase the batch out from under
      // this loop (prune seals live batches instead).
      auto it = batches_.find(ev.payload);
      assert(it != batches_.end() && "batch event for an erased batch");
      TxBatch& b = it->second;
      const sim::Time bound = sim_->drain_bound();
      while (b.next < b.members.size()) {
        const BatchMember m = b.members[b.next];
        if (m.t > bound) break;  // honour the enclosing run_until horizon
        // Yield whenever any queued event's (t, seq) key precedes this
        // member's: delivering it now would reorder the global trajectory.
        // The first member never yields — this event *was* the queue
        // minimum at exactly (m.t, m.seq).
        const auto [qt, qseq] = sim_->next_event_key();
        if (m.t > qt || (m.t == qt && m.seq > qseq)) break;
        ++b.next;
        sim_->advance_to(m.t);
        sim_->note_drained_delivery();
        const eth::Transaction tx = arena_.take(m.slot);
        // Re-read the peer slot each iteration: a delivery can detach ev.a.
        peers_[ev.a]->deliver_tx(tx, ev.b);
      }
      if (b.next < b.members.size()) {
        // Park the batch back in the queue at its next member's reserved
        // key; it pops again exactly when that member would have.
        const BatchMember& m = b.members[b.next];
        sim_->schedule_at_seq(m.t, ev, m.seq);
      } else {
        // Fully drained: erase the batch and return the stream to its
        // plain single-event regime — the next send inside the window
        // opens a fresh batch only if another one joins it. By key, not
        // via `it` (see above).
        if (!b.sealed) {
          auto sit = streams_.find(stream_key(ev.b, ev.a));
          if (sit != streams_.end() && sit->second.open_batch == ev.payload) {
            sit->second.open_batch = 0;
          }
        }
        batches_.erase(ev.payload);
      }
      break;
    }
    case sim::EventKind::kDeliverAnnounce:
      peers_[ev.a]->deliver_announce(ev.payload, ev.b);
      break;
    case sim::EventKind::kDeliverGetTx:
      peers_[ev.a]->deliver_get_tx(ev.payload, ev.b);
      break;
    case sim::EventKind::kBlockCommit:
      peers_[ev.a]->on_block_commit();
      break;
    case sim::EventKind::kMineTick:
      if (!mining_on_) break;
      mine_block(miners_[next_miner_++ % miners_.size()]);
      sim_->schedule_after(mine_interval_, sim::Event::typed(sim::EventKind::kMineTick, this));
      break;
    default:
      assert(false && "unexpected event kind routed to Network");
      break;
  }
}

}  // namespace topo::p2p
