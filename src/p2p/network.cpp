#include "p2p/network.h"

#include <algorithm>
#include <cassert>

#include "eth/miner.h"
#include "p2p/node.h"
#include "wire/messages.h"

namespace topo::p2p {

Peer::~Peer() {
  if (registry_ != nullptr) registry_->detach_peer(id_);
}

Network::Network(sim::Simulator* sim, eth::Chain* chain, util::Rng rng, sim::LatencyModel latency)
    : sim_(sim), chain_(chain), rng_(rng), latency_(latency) {
  assert(sim_ != nullptr && chain_ != nullptr);
}

Network::~Network() {
  // Unhook every registered peer before members start dying: the owned
  // nodes' ~Peer must not detach into a half-destroyed network, and
  // externally owned peers that outlive us must not dangle into it later.
  for (Peer* p : peers_) {
    if (p != nullptr && p->registry_ == this) p->registry_ = nullptr;
  }
}

PeerId Network::add_node(const NodeConfig& config) {
  auto node = std::make_unique<Node>(config, this, chain_, rng_.split());
  Node* raw = node.get();
  owned_.push_back(std::move(node));
  const PeerId id = register_peer(raw);
  network_id_of_[id] = config.network_id;
  regular_.push_back(id);
  if (metrics_enabled_) raw->pool().set_obs(&pool_obs_);
  raw->start();
  return id;
}

std::vector<PeerId> Network::populate(const graph::Graph& topology, const NodeConfig& config) {
  std::vector<PeerId> ids;
  ids.reserve(topology.num_nodes());
  for (size_t i = 0; i < topology.num_nodes(); ++i) ids.push_back(add_node(config));
  for (const auto& [u, v] : topology.edges()) connect(ids[u], ids[v]);
  return ids;
}

void Network::enable_metrics(obs::MetricsRegistry& reg) {
  obs_.messages = &reg.counter("net.messages");
  obs_.messages_tx = &reg.counter("net.messages.tx");
  obs_.messages_announce = &reg.counter("net.messages.announce");
  obs_.messages_get_tx = &reg.counter("net.messages.get_tx");
  obs_.bytes = &reg.counter("net.bytes");
  obs_.trace = &reg.trace();
  pool_obs_ = mempool::PoolObs::wire(reg);
  metrics_enabled_ = true;
  for (auto& node : owned_) node->pool().set_obs(&pool_obs_);
}

PeerId Network::register_peer(Peer* peer) {
  const PeerId id = static_cast<PeerId>(peers_.size());
  peer->id_ = id;
  peer->registry_ = this;
  peers_.push_back(peer);
  adj_.emplace_back();
  adj_set_.emplace_back();
  network_id_of_.push_back(0);  // externally registered peers observe any overlay
  return id;
}

namespace {

/// Inert stand-in for detached peers.
class SinkPeer final : public Peer {
 public:
  void deliver_tx(const eth::Transaction&, PeerId) override {}
  void deliver_announce(eth::TxHash, PeerId) override {}
  void deliver_get_tx(eth::TxHash, PeerId) override {}
};

/// Shared inert sink occupying detached (and not-yet-rebound) peer slots.
Peer& detached_sink() {
  static SinkPeer sink;
  return sink;
}

}  // namespace

void Network::detach_peer(PeerId id) {
  if (peers_[id]->registry_ == this) peers_[id]->registry_ = nullptr;
  while (!adj_[id].empty()) disconnect(id, adj_[id].back());
  peers_[id] = &detached_sink();
}

bool Network::connect(PeerId a, PeerId b) {
  if (a == b || a >= peers_.size() || b >= peers_.size()) return false;
  if (adj_set_[a].count(b)) return false;
  // Simulated Status handshake (paper Fig. 1): different blockchain
  // overlays disconnect immediately. networkID 0 is the wildcard observer.
  const uint64_t net_a = network_id_of_[a];
  const uint64_t net_b = network_id_of_[b];
  if (net_a != 0 && net_b != 0 && net_a != net_b) return false;
  adj_set_[a].insert(b);
  adj_set_[b].insert(a);
  adj_[a].push_back(b);
  adj_[b].push_back(a);
  peers_[a]->on_peer_connected(b);
  peers_[b]->on_peer_connected(a);
  return true;
}

bool Network::disconnect(PeerId a, PeerId b) {
  if (a >= peers_.size() || b >= peers_.size() || !adj_set_[a].count(b)) return false;
  adj_set_[a].erase(b);
  adj_set_[b].erase(a);
  auto drop = [](std::vector<PeerId>& v, PeerId x) {
    v.erase(std::find(v.begin(), v.end(), x));
  };
  drop(adj_[a], b);
  drop(adj_[b], a);
  return true;
}

bool Network::linked(PeerId a, PeerId b) const {
  if (a >= peers_.size() || b >= peers_.size()) return false;
  return adj_set_[a].count(b) > 0;
}

Node& Network::node(PeerId n) {
  Node* p = dynamic_cast<Node*>(peers_[n]);
  assert(p != nullptr && "peer id does not refer to a regular Node");
  return *p;
}

const Node& Network::node(PeerId n) const {
  const Node* p = dynamic_cast<const Node*>(peers_[n]);
  assert(p != nullptr && "peer id does not refer to a regular Node");
  return *p;
}

double Network::fifo_delivery_time(PeerId from, PeerId to, double delay) {
  const uint64_t key = (static_cast<uint64_t>(from) << 32) | to;
  double& last = last_delivery_[key];
  const double at = std::max(sim_->now() + delay, last + 1e-6);
  last = at;
  return at;
}

uint32_t Network::acquire_tx_slot(const eth::Transaction& tx) {
  if (!tx_free_.empty()) {
    const uint32_t slot = tx_free_.back();
    tx_free_.pop_back();
    tx_slab_[slot] = tx;
    return slot;
  }
  tx_slab_.push_back(tx);
  return static_cast<uint32_t>(tx_slab_.size() - 1);
}

void Network::send_tx(PeerId from, PeerId to, const eth::Transaction& tx, double extra_delay) {
  ++messages_;
  const uint64_t size = wire::transaction_wire_size(tx);
  bytes_ += size;
  if (obs_.messages != nullptr) {
    obs_.messages->inc();
    obs_.messages_tx->inc();
    obs_.bytes->inc(size);
  }
  double lat = latency_.sample(rng_);
  if (fault_ != nullptr) {
    // Dropped messages stay in the sent tallies (the wire bytes were
    // spent); they just never schedule a delivery.
    if (fault_->should_drop(MsgKind::kTx, from, to)) return;
    lat *= fault_->latency_multiplier(MsgKind::kTx, from, to);
  }
  const double at = fifo_delivery_time(from, to, lat + extra_delay);
  const uint32_t slot = acquire_tx_slot(tx);
  sim_->schedule_at(at, sim::Event::typed(sim::EventKind::kDeliverTx, this, to, from, slot));
}

void Network::send_announce(PeerId from, PeerId to, eth::TxHash hash) {
  ++messages_;
  bytes_ += wire::announcement_wire_size();
  if (obs_.messages != nullptr) {
    obs_.messages->inc();
    obs_.messages_announce->inc();
    obs_.bytes->inc(wire::announcement_wire_size());
  }
  double lat = latency_.sample(rng_);
  if (fault_ != nullptr) {
    if (fault_->should_drop(MsgKind::kAnnounce, from, to)) return;
    lat *= fault_->latency_multiplier(MsgKind::kAnnounce, from, to);
  }
  const double at = fifo_delivery_time(from, to, lat);
  sim_->schedule_at(at, sim::Event::typed(sim::EventKind::kDeliverAnnounce, this, to, from, hash));
}

void Network::send_get_tx(PeerId from, PeerId to, eth::TxHash hash) {
  ++messages_;
  bytes_ += wire::announcement_wire_size();
  if (obs_.messages != nullptr) {
    obs_.messages->inc();
    obs_.messages_get_tx->inc();
    obs_.bytes->inc(wire::announcement_wire_size());
  }
  double lat = latency_.sample(rng_);
  if (fault_ != nullptr) {
    if (fault_->should_drop(MsgKind::kGetTx, from, to)) return;
    lat *= fault_->latency_multiplier(MsgKind::kGetTx, from, to);
  }
  const double at = fifo_delivery_time(from, to, lat);
  sim_->schedule_at(at, sim::Event::typed(sim::EventKind::kDeliverGetTx, this, to, from, hash));
}

void Network::seed_mempools(const std::vector<eth::Transaction>& txs,
                            const std::unordered_set<PeerId>& except) {
  const double now = sim_->now();
  for (PeerId id : regular_) {
    if (except.count(id)) continue;
    auto& pool = node(id).pool();
    for (const auto& tx : txs) pool.add(tx, now);
  }
}

graph::Graph Network::snapshot_topology() const {
  graph::Graph g(regular_.size());
  std::vector<int64_t> remap(peers_.size(), -1);
  for (size_t i = 0; i < regular_.size(); ++i) remap[regular_[i]] = static_cast<int64_t>(i);
  for (size_t i = 0; i < regular_.size(); ++i) {
    for (PeerId nbr : adj_[regular_[i]]) {
      const int64_t j = remap[nbr];
      if (j >= 0 && static_cast<int64_t>(i) < j)
        g.add_edge(static_cast<graph::NodeId>(i), static_cast<graph::NodeId>(j));
    }
  }
  return g;
}

int64_t Network::graph_index(PeerId n) const {
  for (size_t i = 0; i < regular_.size(); ++i) {
    if (regular_[i] == n) return static_cast<int64_t>(i);
  }
  return -1;
}

const eth::Block& Network::mine_block(PeerId miner) {
  eth::Block b;
  b.timestamp = sim_->now();
  b.miner_node = miner;
  const auto candidates = node(miner).pool().pending_snapshot();
  b.txs = eth::pack_block(candidates, *chain_, chain_->gas_limit(), chain_->base_fee());
  const eth::Block& committed = chain_->commit(std::move(b));
  // Block propagation is fast relative to the 13 s interval; deliver the
  // commit to every participant after one link latency.
  for (PeerId i = 0; i < peers_.size(); ++i) {
    sim_->schedule_after(latency_.sample(rng_),
                         sim::Event::typed(sim::EventKind::kBlockCommit, this, i));
  }
  return committed;
}

void Network::start_link_churn(double events_per_sec) {
  if (events_per_sec <= 0.0 || regular_.size() < 4) return;
  churn_on_ = true;
  auto tick = std::make_shared<std::function<void()>>();
  *tick = [this, events_per_sec, tick] {
    if (!churn_on_) return;
    // Drop one random link between regular nodes.
    std::unordered_set<PeerId> regular_set(regular_.begin(), regular_.end());
    for (int attempt = 0; attempt < 16; ++attempt) {
      const PeerId u = regular_[rng_.index(regular_.size())];
      if (adj_[u].empty()) continue;
      const PeerId v = adj_[u][rng_.index(adj_[u].size())];
      if (!regular_set.count(v)) continue;  // never churn measurement links
      disconnect(u, v);
      ++churn_events_;
      break;
    }
    // Dial one random replacement link (reconnect gossip fires).
    for (int attempt = 0; attempt < 16; ++attempt) {
      const PeerId a = regular_[rng_.index(regular_.size())];
      const PeerId b = regular_[rng_.index(regular_.size())];
      if (a == b || linked(a, b)) continue;
      connect(a, b);
      break;
    }
    sim_->after(rng_.exponential(1.0 / events_per_sec), *tick);
  };
  sim_->after(rng_.exponential(1.0 / events_per_sec), *tick);
}

Network::Snapshot Network::snapshot() const {
  Snapshot s;
  s.rng = rng_;
  s.nodes.reserve(regular_.size());
  for (PeerId id : regular_) s.nodes.push_back(node(id).snapshot());
  s.regular = regular_;
  s.adj = adj_;
  s.network_id_of = network_id_of_;
  s.messages = messages_;
  s.bytes = bytes_;
  s.mining_on = mining_on_;
  s.next_miner = next_miner_;
  s.miners = miners_;
  s.mine_interval = mine_interval_;
  s.tx_slab = tx_slab_;
  s.tx_free = tx_free_;
  s.last_delivery = last_delivery_;
  return s;
}

void Network::restore(const Snapshot& snap) {
  assert(peers_.empty() && "restore() requires a freshly constructed network");
  rng_ = snap.rng;
  const size_t total = snap.adj.size();
  // Every slot starts as the inert sink; regular nodes fill theirs below,
  // external owners re-bind theirs via rebind_external.
  peers_.assign(total, &detached_sink());
  adj_ = snap.adj;
  adj_set_.assign(total, {});
  for (size_t i = 0; i < total; ++i) {
    adj_set_[i] = std::unordered_set<PeerId>(adj_[i].begin(), adj_[i].end());
  }
  network_id_of_ = snap.network_id_of;
  regular_ = snap.regular;
  owned_.reserve(regular_.size());
  for (size_t i = 0; i < regular_.size(); ++i) {
    // Restore constructor: no start() ticks, no connect() gossip — the
    // warmed world's pending events are re-pushed by the scenario layer.
    auto node = std::make_unique<Node>(snap.nodes[i], this, chain_);
    node->id_ = regular_[i];
    node->registry_ = this;
    if (metrics_enabled_) node->pool().set_obs(&pool_obs_);
    peers_[regular_[i]] = node.get();
    owned_.push_back(std::move(node));
  }
  messages_ = snap.messages;
  bytes_ = snap.bytes;
  mining_on_ = snap.mining_on;
  next_miner_ = snap.next_miner;
  miners_ = snap.miners;
  mine_interval_ = snap.mine_interval;
  tx_slab_ = snap.tx_slab;
  tx_free_ = snap.tx_free;
  last_delivery_ = snap.last_delivery;
}

void Network::rebind_external(PeerId id, Peer* peer) {
  assert(id < peers_.size() && "rebind_external: no such slot");
  peer->id_ = id;
  peer->registry_ = this;
  peers_[id] = peer;
}

void Network::start_mining(std::vector<PeerId> miners, double interval) {
  if (miners.empty()) return;
  mining_on_ = true;
  next_miner_ = 0;
  miners_ = std::move(miners);
  mine_interval_ = interval;
  sim_->schedule_after(interval, sim::Event::typed(sim::EventKind::kMineTick, this));
}

void Network::on_event(const sim::Event& ev) {
  switch (ev.kind) {
    case sim::EventKind::kDeliverTx: {
      // Copy out and release the slot before delivering: propagation inside
      // deliver_tx may send again and grow the slab.
      const uint32_t slot = static_cast<uint32_t>(ev.payload);
      const eth::Transaction tx = tx_slab_[slot];
      tx_free_.push_back(slot);
      peers_[ev.a]->deliver_tx(tx, ev.b);
      break;
    }
    case sim::EventKind::kDeliverAnnounce:
      peers_[ev.a]->deliver_announce(ev.payload, ev.b);
      break;
    case sim::EventKind::kDeliverGetTx:
      peers_[ev.a]->deliver_get_tx(ev.payload, ev.b);
      break;
    case sim::EventKind::kBlockCommit:
      peers_[ev.a]->on_block_commit();
      break;
    case sim::EventKind::kMineTick:
      if (!mining_on_) break;
      mine_block(miners_[next_miner_++ % miners_.size()]);
      sim_->schedule_after(mine_interval_, sim::Event::typed(sim::EventKind::kMineTick, this));
      break;
    default:
      assert(false && "unexpected event kind routed to Network");
      break;
  }
}

}  // namespace topo::p2p
