#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <unordered_set>
#include <utility>
#include <vector>

#include "eth/transaction.h"

namespace topo::p2p {

/// Chunked pool of in-flight full-transaction payloads (kDeliverTx slots
/// and staged batch members). Successor of the grow-only tx slab: slots
/// are recycled LIFO within fixed-size chunks, and a chunk whose slots all
/// drain is *released* (its memory freed, the chunk index retired for
/// reuse) once the arena is mostly empty — so an eviction-flood spike no
/// longer pins its high-water footprint for the rest of the campaign
/// (mirroring the FlatPriceIndex compaction fix).
///
/// Slot handles are stable for the lifetime of the payload: a handle is
/// `chunk * kChunkSlots + offset`, and only fully-free chunks are ever
/// released, so a live handle can never be invalidated. Every operation is
/// deterministic — identical acquire/release histories produce identical
/// handle assignments, which keeps campaign replays byte-identical.
class PayloadArena {
 public:
  static constexpr uint32_t kChunkSlots = 256;

  /// Copies `tx` into a free slot and returns its handle.
  uint32_t acquire(const eth::Transaction& tx) {
    if (nonfull_.empty()) materialize_chunk();
    const uint32_t ci = nonfull_.back();
    Chunk& c = chunks_[ci];
    const uint32_t off = c.free_local.back();
    c.free_local.pop_back();
    if (c.free_local.empty()) nonfull_.pop_back();
    c.txs[off] = tx;
    ++c.live;
    ++live_;
    if (live_ > peak_) peak_ = live_;
    return ci * kChunkSlots + off;
  }

  const eth::Transaction& peek(uint32_t slot) const {
    return chunks_[slot / kChunkSlots].txs[slot % kChunkSlots];
  }

  /// Copies the payload out and releases the slot (the delivery path).
  eth::Transaction take(uint32_t slot) {
    eth::Transaction tx = peek(slot);
    release(slot);
    return tx;
  }

  void release(uint32_t slot) {
    const uint32_t ci = slot / kChunkSlots;
    Chunk& c = chunks_[ci];
    if (c.free_local.empty()) nonfull_.push_back(ci);  // was full, has space again
    c.free_local.push_back(slot % kChunkSlots);
    assert(c.live > 0 && live_ > 0);
    --c.live;
    --live_;
    // Post-spike compaction: once the arena is at most half full, every
    // drained chunk hands its memory back instead of idling as warm
    // capacity — including chunks that emptied before the threshold was
    // crossed. Keeping one resident chunk avoids thrash at steady-state
    // zero.
    if (c.live == 0 && materialized_ > 1 && live_ * 2 < capacity_slots()) {
      compact();
    }
  }

  size_t live() const { return live_; }
  size_t capacity_slots() const { return size_t{materialized_} * kChunkSlots; }

  /// Most payloads ever simultaneously in flight (`net.arena_peak`).
  uint64_t peak() const { return peak_; }
  /// Restarts the high-water gauge from the current level (per-fork reset,
  /// like the mempool index tombstone peak).
  void reset_peak() { peak_ = live_; }

  /// Live payloads only, by handle — chunk layout is rebuilt on restore,
  /// so a spike that preceded the snapshot costs the replica nothing.
  struct Snapshot {
    std::vector<std::pair<uint32_t, eth::Transaction>> slots;
  };

  Snapshot snapshot() const {
    Snapshot s;
    s.slots.reserve(live_);
    for (uint32_t ci = 0; ci < chunks_.size(); ++ci) {
      const Chunk& c = chunks_[ci];
      if (c.live == 0) continue;
      std::unordered_set<uint32_t> free_set(c.free_local.begin(), c.free_local.end());
      for (uint32_t off = 0; off < kChunkSlots; ++off) {
        if (!free_set.count(off)) s.slots.emplace_back(ci * kChunkSlots + off, c.txs[off]);
      }
    }
    return s;
  }

  void restore(const Snapshot& snap) {
    chunks_.clear();
    nonfull_.clear();
    retired_.clear();
    materialized_ = 0;
    live_ = 0;
    peak_ = 0;
    uint32_t max_chunk = 0;
    for (const auto& [slot, tx] : snap.slots) max_chunk = std::max(max_chunk, slot / kChunkSlots);
    if (!snap.slots.empty()) chunks_.resize(max_chunk + 1);
    std::vector<std::vector<bool>> used(chunks_.size());
    for (const auto& [slot, tx] : snap.slots) {
      Chunk& c = chunks_[slot / kChunkSlots];
      if (c.txs.empty()) {
        c.txs.resize(kChunkSlots);
        used[slot / kChunkSlots].assign(kChunkSlots, false);
        ++materialized_;
      }
      c.txs[slot % kChunkSlots] = tx;
      used[slot / kChunkSlots][slot % kChunkSlots] = true;
      ++c.live;
      ++live_;
    }
    for (uint32_t ci = 0; ci < chunks_.size(); ++ci) {
      Chunk& c = chunks_[ci];
      if (c.txs.empty()) {
        retired_.push_back(ci);
        continue;
      }
      for (uint32_t off = kChunkSlots; off-- > 0;) {
        if (!used[ci][off]) c.free_local.push_back(off);
      }
      if (!c.free_local.empty()) nonfull_.push_back(ci);
    }
    peak_ = live_;
  }

 private:
  struct Chunk {
    std::vector<eth::Transaction> txs;  ///< empty = released, else kChunkSlots
    std::vector<uint32_t> free_local;   ///< free offsets, LIFO
    uint32_t live = 0;
  };

  void materialize_chunk() {
    uint32_t ci;
    if (!retired_.empty()) {
      ci = retired_.back();
      retired_.pop_back();
    } else {
      ci = static_cast<uint32_t>(chunks_.size());
      chunks_.emplace_back();
    }
    Chunk& c = chunks_[ci];
    c.txs.resize(kChunkSlots);
    c.free_local.reserve(kChunkSlots);
    for (uint32_t off = kChunkSlots; off-- > 0;) c.free_local.push_back(off);
    ++materialized_;
    nonfull_.push_back(ci);
  }

  /// Releases every fully drained chunk but the last resident one.
  void compact() {
    for (uint32_t ci = 0; ci < chunks_.size() && materialized_ > 1; ++ci) {
      Chunk& c = chunks_[ci];
      if (c.live == 0 && !c.txs.empty()) release_chunk(ci);
    }
  }

  void release_chunk(uint32_t ci) {
    Chunk& c = chunks_[ci];
    std::vector<eth::Transaction>().swap(c.txs);
    std::vector<uint32_t>().swap(c.free_local);
    nonfull_.erase(std::find(nonfull_.begin(), nonfull_.end(), ci));
    retired_.push_back(ci);
    --materialized_;
  }

  std::vector<Chunk> chunks_;
  std::vector<uint32_t> nonfull_;  ///< materialized chunks with free slots (LIFO)
  std::vector<uint32_t> retired_;  ///< released chunk indices awaiting reuse
  uint32_t materialized_ = 0;
  size_t live_ = 0;
  uint64_t peak_ = 0;
};

}  // namespace topo::p2p
