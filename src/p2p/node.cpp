#include "p2p/node.h"

#include <algorithm>
#include <cmath>

#include "p2p/network.h"

namespace topo::p2p {

Node::Node(NodeConfig config, Network* net, const eth::StateView* state, util::Rng rng)
    : config_(std::move(config)), net_(net), pool_(config_.policy(), state), rng_(rng) {}

Node::Snapshot Node::snapshot() const {
  return Snapshot{config_,        rng_,
                  unresponsive_,  pool_.snapshot(),
                  announce_block_until_, announce_sources_};
}

Node::Node(const Snapshot& snap, Network* net, const eth::StateView* state)
    : config_(snap.config),
      net_(net),
      pool_(config_.policy(), state),
      rng_(snap.rng),
      unresponsive_(snap.unresponsive),
      announce_block_until_(snap.announce_block_until),
      announce_sources_(snap.announce_sources) {
  pool_.restore(snap.pool);
}

void Node::start() {
  auto& sim = net_->simulator();
  // Maintenance loop (Geth's deferred reorg work). Jittered start so nodes
  // do not run in lockstep.
  const double jitter = rng_.uniform() * config_.maintenance_interval;
  sim.schedule_after(jitter, sim::Event::typed(sim::EventKind::kMaintenance, this));
  if (config_.regossip_interval > 0.0) {
    const double gj = rng_.uniform() * config_.regossip_interval;
    sim.schedule_after(gj, sim::Event::typed(sim::EventKind::kRegossip, this));
  }
}

void Node::on_event(const sim::Event& ev) {
  switch (ev.kind) {
    case sim::EventKind::kFetchTimeout:
      request_body(ev.payload);
      break;
    case sim::EventKind::kMaintenance:
      pool_.maintain(net_->simulator().now());
      net_->simulator().schedule_after(config_.maintenance_interval, ev);
      break;
    case sim::EventKind::kRegossip:
      if (!unresponsive_) {
        const auto& peers = net_->peers_of(id());
        if (!peers.empty() && pool_.pending_count() != 0) {
          // Re-gossip one random pending transaction to one random peer —
          // the txC re-propagation race source (§5.2.1). random_pending
          // draws the same index a pending_snapshot() pick would, without
          // the O(pool) copy every tick.
          const eth::Transaction* tx = pool_.random_pending(rng_);
          if (tx != nullptr) net_->send_tx(id(), peers[rng_.index(peers.size())], *tx);
        }
      }
      net_->simulator().schedule_after(config_.regossip_interval, ev);
      break;
    default:
      break;
  }
}

std::string Node::client_version() const {
  return mempool::client_version_string(config_.client);
}

mempool::AdmitResult Node::submit(const eth::Transaction& tx) {
  const auto result = pool_.add(tx, net_->simulator().now());
  if (!unresponsive_ && config_.forwards_transactions) {
    if (result.admitted_pending()) propagate(tx, id());
    for (const auto& p : result.promoted) propagate(p, id());
    if (result.code == mempool::AdmitCode::kAddedFuture && config_.forwards_future)
      propagate(tx, id());
  }
  return result;
}

void Node::admit_and_propagate(const eth::Transaction& tx, PeerId from) {
  const auto result = pool_.add(tx, net_->simulator().now());
  if (unresponsive_ || !config_.forwards_transactions) return;
  if (result.admitted_pending()) propagate(tx, from);
  for (const auto& p : result.promoted) propagate(p, from);
  if (result.code == mempool::AdmitCode::kAddedFuture && config_.forwards_future)
    propagate(tx, from);
}

void Node::deliver_tx(const eth::Transaction& tx, PeerId from) {
  if (unresponsive_) return;
  // Body arrival settles any outstanding fetch, however it got here (a
  // direct push races the announce protocol and must still release the
  // fetcher entry). Flood-admission fast path: with no fetches outstanding
  // — the overwhelmingly common state in push-mode floods, where batched
  // delivery funnels hundreds of admissions through here back-to-back —
  // skip the content-hash computation and both map probes entirely.
  if (!announce_block_until_.empty() || !announce_sources_.empty()) prune_fetcher(tx.hash());
  admit_and_propagate(tx, from);
}

void Node::prune_fetcher(eth::TxHash hash) {
  announce_block_until_.erase(hash);
  announce_sources_.erase(hash);
}

void Node::restart() {
  pool_.clear();
  announce_block_until_.clear();
  announce_sources_.clear();
}

void Node::deliver_announce(eth::TxHash hash, PeerId from) {
  if (unresponsive_) return;
  if (pool_.contains(hash)) return;
  const double now = net_->simulator().now();
  auto it = announce_block_until_.find(hash);
  if (it != announce_block_until_.end() && it->second > now) {
    // Blocked window: remember the alternate announcer for fail-over.
    announce_sources_[hash].push_back(from);
    return;
  }
  announce_block_until_[hash] = now + config_.announce_timeout;
  announce_sources_[hash].clear();
  net_->send_get_tx(id(), from, hash);
  // Fetcher fail-over: if the body has not arrived when the window closes,
  // ask the next peer that announced it. request_body also prunes the
  // fetcher state when the fetch is settled or the sources are exhausted.
  net_->simulator().schedule_after(
      config_.announce_timeout,
      sim::Event::typed(sim::EventKind::kFetchTimeout, this, 0, 0, hash));
}

void Node::request_body(eth::TxHash hash) {
  if (unresponsive_ || pool_.contains(hash)) {
    // Nothing further to fetch (or we are down and dropping everything):
    // drop the window/source bookkeeping instead of leaking it.
    prune_fetcher(hash);
    return;
  }
  auto it = announce_sources_.find(hash);
  if (it == announce_sources_.end() || it->second.empty()) {
    // Every announcer has been tried and the body never came — give up and
    // release the fetcher state (window expiry pruning).
    prune_fetcher(hash);
    return;
  }
  const PeerId next = it->second.front();
  it->second.erase(it->second.begin());
  const double now = net_->simulator().now();
  announce_block_until_[hash] = now + config_.announce_timeout;
  net_->send_get_tx(id(), next, hash);
  net_->simulator().schedule_after(
      config_.announce_timeout,
      sim::Event::typed(sim::EventKind::kFetchTimeout, this, 0, 0, hash));
}

void Node::deliver_get_tx(eth::TxHash hash, PeerId from) {
  if (unresponsive_) return;
  const eth::Transaction* tx = pool_.find_hash(hash);
  if (tx != nullptr) net_->send_tx(id(), from, *tx);
}

void Node::on_peer_connected(PeerId peer) {
  if (unresponsive_ || !config_.forwards_transactions) return;
  // Real clients gossip their pool to a fresh peer. Announce (or push) a
  // bounded sample to keep simulated connect storms cheap.
  const auto snapshot = pool_.pending_snapshot();
  const size_t limit = std::min<size_t>(snapshot.size(), 256);
  for (size_t i = 0; i < limit; ++i) {
    if (config_.use_announcements) {
      net_->send_announce(id(), peer, snapshot[i].hash());
    } else {
      net_->send_tx(id(), peer, snapshot[i]);
    }
  }
}

void Node::on_block_commit() {
  pool_.set_base_fee(net_->chain().base_fee());
  const auto update = pool_.on_block();
  if (unresponsive_ || !config_.forwards_transactions) return;
  for (const auto& p : update.promoted) propagate(p, id());
}

void Node::propagate(const eth::Transaction& tx, PeerId exclude) {
  const auto& peers = net_->peers_of(id());
  if (peers.empty()) return;
  if (obs::TraceRing* trace = net_->obs_trace()) {
    trace->push(net_->simulator().now(), obs::TraceKind::kTxForwarded, tx.id, id());
  }
  if (config_.announce_only) {
    // Bitcoin-style: hashes only; bodies travel by request.
    for (PeerId p : peers) {
      if (p != exclude) net_->send_announce(id(), p, tx.hash());
    }
    return;
  }
  if (!config_.use_announcements) {
    for (PeerId p : peers) {
      if (p != exclude) net_->send_tx(id(), p, tx);
    }
    return;
  }
  // Geth >= 1.9.11: direct push to sqrt(#peers) randomly chosen peers,
  // hash announcement to the rest.
  std::vector<PeerId> order(peers.begin(), peers.end());
  rng_.shuffle(order);
  const size_t push_count = std::max<size_t>(
      1, static_cast<size_t>(std::lround(std::sqrt(static_cast<double>(order.size())))));
  for (size_t i = 0; i < order.size(); ++i) {
    if (order[i] == exclude) continue;
    if (i < push_count) {
      net_->send_tx(id(), order[i], tx);
    } else {
      net_->send_announce(id(), order[i], tx.hash());
    }
  }
}

}  // namespace topo::p2p
