#pragma once

#include "p2p/peer.h"

namespace topo::p2p {

/// Message kinds the network's send primitives distinguish (the devp2p
/// messages a fault layer can target independently).
enum class MsgKind {
  kTx,        ///< full-transaction push (Transactions)
  kAnnounce,  ///< hash announcement (NewPooledTransactionHashes)
  kGetTx,     ///< body request (GetPooledTransactions)
};

/// Message-path fault interface consulted by Network's send primitives.
///
/// The p2p layer stays ignorant of fault *policy* (probabilities, seeds,
/// schedules live in topo::fault above it); it only exposes the seam. A
/// null hook costs the hot send paths a single pointer test, so networks
/// without fault injection are byte-identical to pre-hook behavior.
class FaultHook {
 public:
  virtual ~FaultHook() = default;

  /// True: the message is lost on the wire (sent and counted, never
  /// delivered).
  virtual bool should_drop(MsgKind kind, PeerId from, PeerId to) = 0;

  /// Multiplier applied to the sampled link latency (1.0 = no spike).
  virtual double latency_multiplier(MsgKind kind, PeerId from, PeerId to) = 0;
};

}  // namespace topo::p2p
