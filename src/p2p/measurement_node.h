#pragma once

#include <optional>
#include <unordered_map>
#include <vector>

#include "eth/account.h"
#include "mempool/mempool.h"
#include "obs/metrics.h"
#include "p2p/peer.h"

namespace topo::p2p {

class Network;

/// The instrumented measurement node M (paper §5): a supernode that
///  - connects to every target node,
///  - records which peer forwarded each transaction (the Step-4 check
///    "receives txA *from Node B*"),
///  - can send any transaction — including deliberately future ones — to a
///    specific peer, bypassing the local validity checks a stock client
///    would apply (the paper statically instruments Geth for this),
///  - keeps a passive local mempool view of network traffic, used to
///    estimate the txC gas price Y as the median pending price (§5.2.1),
///  - paces its outgoing transactions at a configurable throughput, which
///    is what stretches the eviction->txB race window as group sizes grow.
///
/// M never propagates: received transactions are only logged and mirrored
/// into the passive view.
class MeasurementNode final : public Peer {
 public:
  /// `send_spacing` seconds between consecutive outgoing transactions.
  /// `view_policy` controls M's passive pool view; by default it mirrors a
  /// stock Geth pool so the median-price estimator (§5.2.1) tracks the
  /// *live* fee market the way a real node's mempool does.
  MeasurementNode(Network* net, const eth::StateView* state, double send_spacing = 0.0002,
                  std::optional<mempool::MempoolPolicy> view_policy = std::nullopt);

  // -- Peer interface ------------------------------------------------------
  void deliver_tx(const eth::Transaction& tx, PeerId from) override;
  void deliver_announce(eth::TxHash hash, PeerId from) override;
  void deliver_get_tx(eth::TxHash hash, PeerId from) override;
  void on_block_commit() override;

  // -- Sending -------------------------------------------------------------
  /// Queues one transaction to `peer`; sends are serialized at the node's
  /// throughput. Returns the scheduled departure time.
  double send_to(PeerId peer, const eth::Transaction& tx);

  /// Queues a batch (e.g. the Z future transactions) to `peer`.
  double send_batch_to(PeerId peer, const std::vector<eth::Transaction>& txs);

  /// Time the last queued send departs.
  double send_backlog_until() const { return next_free_send_; }

  // -- Receive log ---------------------------------------------------------
  /// True if `hash` has been received from `peer` (at any time).
  bool received_from(eth::TxHash hash, PeerId peer) const;

  /// True if received from `peer` at time >= since.
  bool received_from_since(eth::TxHash hash, PeerId peer, double since) const;

  /// True if received from `peer` at time >= since AND from no other peer
  /// in that window. Since every node that admits a transaction pushes it
  /// to its peers (M among them), a reception from anyone else proves the
  /// isolation property was violated and the measurement must be discarded
  /// (strict isolation check; keeps precision at 100% by construction).
  bool received_only_from(eth::TxHash hash, PeerId peer, double since) const;

  /// All (peer, time) receptions of a hash.
  std::vector<std::pair<PeerId, double>> receptions(eth::TxHash hash) const;

  void clear_log();

  // -- Passive pool view ---------------------------------------------------
  const mempool::Mempool& view() const { return view_; }
  mempool::Mempool& view() { return view_; }

  /// Connects M to every regular node currently in the network.
  void connect_to_all();

  uint64_t txs_sent() const { return txs_sent_; }

  // -- World forking ---------------------------------------------------------
  /// Frozen measurement-node state (core::Scenario::snapshot). The passive
  /// view rides behind copy-on-write handles; metrics wiring is NOT part of
  /// the snapshot — the forked scenario calls set_metrics on its own
  /// registry.
  struct Snapshot {
    mempool::Mempool::Snapshot view;
    double next_free_send = 0.0;
    uint64_t txs_sent = 0;
    std::unordered_map<eth::TxHash, std::vector<std::pair<PeerId, double>>> log;
  };
  Snapshot snapshot() const { return Snapshot{view_.snapshot(), next_free_send_, txs_sent_, log_}; }
  void restore(const Snapshot& snap) {
    view_.restore(snap.view);
    next_free_send_ = snap.next_free_send;
    txs_sent_ = snap.txs_sent;
    log_ = snap.log;
  }

  /// Wires injection accounting (`probe.txs_injected`, tx-injected trace
  /// events) into `reg`, which must outlive the node. M's passive view is
  /// deliberately *not* wired: its pool mirrors traffic other nodes already
  /// account for and would double-count every mempool metric.
  void set_metrics(obs::MetricsRegistry& reg);

 private:
  Network* net_;
  mempool::Mempool view_;
  double send_spacing_;
  double next_free_send_ = 0.0;
  uint64_t txs_sent_ = 0;
  obs::Counter* injected_counter_ = nullptr;
  obs::TraceRing* trace_ = nullptr;
  std::unordered_map<eth::TxHash, std::vector<std::pair<PeerId, double>>> log_;
};

}  // namespace topo::p2p
