#include "fault/fault.h"

#include <algorithm>
#include <functional>
#include <memory>

#include "p2p/node.h"

namespace topo::fault {

FaultObs FaultObs::wire(obs::MetricsRegistry& reg) {
  FaultObs o;
  o.drops_tx = &reg.counter("fault.drops.tx");
  o.drops_announce = &reg.counter("fault.drops.announce");
  o.drops_get_tx = &reg.counter("fault.drops.get_tx");
  o.spikes = &reg.counter("fault.spikes");
  o.restarts = &reg.counter("fault.restarts");
  o.windows = &reg.counter("fault.unresponsive_windows");
  return o;
}

FaultInjector::FaultInjector(FaultPlan plan, uint64_t seed)
    : plan_(std::move(plan)),
      msg_rng_(util::derive_stream_seed(seed, 1)),
      churn_rng_(util::derive_stream_seed(seed, 2)),
      link_seed_(util::derive_stream_seed(seed, 3)) {}

void FaultInjector::install(p2p::Network& net, obs::MetricsRegistry* reg) {
  if (reg != nullptr) obs_ = FaultObs::wire(*reg);
  active_ = true;
  if (plan_.drop_tx > 0.0 || plan_.drop_announce > 0.0 || plan_.drop_get_tx > 0.0 ||
      plan_.spike_prob > 0.0) {
    net.set_fault_hook(this);
  }
  auto& sim = net.simulator();
  for (const NodeFaultEvent& ev : plan_.scheduled) {
    if (ev.node >= net.regular_nodes().size()) continue;
    sim.at(ev.at, [this, &net, ev] {
      apply_node_fault(net, ev.node, ev.duration, ev.crash);
    });
  }
  if (plan_.churn_rate > 0.0 && !net.regular_nodes().empty()) {
    schedule_churn(net);
  }
}

bool FaultInjector::should_drop(p2p::MsgKind kind, p2p::PeerId /*from*/,
                                p2p::PeerId /*to*/) {
  switch (kind) {
    case p2p::MsgKind::kTx:
      if (!msg_rng_.chance(plan_.drop_tx)) return false;
      ++dropped_tx_;
      if (obs_.enabled()) obs_.drops_tx->inc();
      return true;
    case p2p::MsgKind::kAnnounce:
      if (!msg_rng_.chance(plan_.drop_announce)) return false;
      ++dropped_announce_;
      if (obs_.enabled()) obs_.drops_announce->inc();
      return true;
    case p2p::MsgKind::kGetTx:
      if (!msg_rng_.chance(plan_.drop_get_tx)) return false;
      ++dropped_get_tx_;
      if (obs_.enabled()) obs_.drops_get_tx->inc();
      return true;
  }
  return false;
}

double FaultInjector::latency_multiplier(p2p::MsgKind /*kind*/, p2p::PeerId from,
                                         p2p::PeerId to) {
  if (plan_.spike_prob <= 0.0) return 1.0;
  // Spike membership is a pure hash of the directed link, not an RNG draw:
  // the decision is identical whatever order messages traverse the
  // network, which keeps shard replicas byte-identical.
  uint64_t h = link_seed_ ^ ((static_cast<uint64_t>(from) << 32) | static_cast<uint64_t>(to));
  const double u =
      static_cast<double>(util::splitmix64(h) >> 11) * (1.0 / 9007199254740992.0);
  if (u >= plan_.spike_prob) return 1.0;
  ++spiked_;
  if (obs_.enabled()) obs_.spikes->inc();
  return plan_.spike_mult;
}

void FaultInjector::apply_node_fault(p2p::Network& net, size_t node_index, double duration,
                                     bool crash) {
  p2p::Node& node = net.node(net.regular_nodes()[node_index]);
  if (node.unresponsive()) return;  // already inside a fault window
  node.set_unresponsive(true);
  ++windows_;
  if (obs_.enabled()) obs_.windows->inc();
  const p2p::PeerId id = net.regular_nodes()[node_index];
  net.simulator().after(duration, [this, &net, id, crash] {
    p2p::Node& n = net.node(id);
    if (crash) {
      n.restart();
      ++restarts_;
      if (obs_.enabled()) obs_.restarts->inc();
    }
    n.set_unresponsive(false);
  });
}

void FaultInjector::schedule_churn(p2p::Network& net) {
  const double gap = churn_rng_.exponential(1.0 / plan_.churn_rate);
  net.simulator().after(gap, [this, &net] {
    if (!active_) return;
    const size_t victim = churn_rng_.index(net.regular_nodes().size());
    const bool crash = churn_rng_.chance(plan_.crash_fraction);
    apply_node_fault(net, victim, plan_.churn_duration, crash);
    schedule_churn(net);
  });
}

core::FaultReport make_fault_report(const FaultPlan& plan, size_t retries) {
  core::FaultReport f;
  f.drop_tx = plan.drop_tx;
  f.drop_announce = plan.drop_announce;
  f.drop_get_tx = plan.drop_get_tx;
  f.spike_prob = plan.spike_prob;
  f.spike_mult = plan.spike_prob > 0.0 ? plan.spike_mult : 1.0;
  f.churn_rate = plan.churn_rate;
  f.retries = retries;
  return f;
}

std::vector<LinkChange> drift_topology(graph::Graph& g, size_t changes, util::Rng& rng) {
  std::vector<LinkChange> applied;
  applied.reserve(changes);
  const size_t n = g.num_nodes();
  if (n < 2) return applied;
  const size_t all_pairs = n * (n - 1) / 2;
  for (size_t c = 0; c < changes; ++c) {
    // Even steps remove, odd steps add — alternating keeps the edge count
    // (and the monitor's coverage math) roughly stable under sustained
    // churn. A step whose direction is impossible falls through to the
    // other one so the requested change count is honored when it can be.
    bool remove = (c % 2) == 0;
    if (remove && g.num_edges() == 0) remove = false;
    if (!remove && g.num_edges() == all_pairs) remove = g.num_edges() > 0;
    if (remove) {
      const auto edges = g.edges();
      const auto [u, v] = edges[rng.index(edges.size())];
      g.remove_edge(u, v);
      applied.push_back({u, v, false});
    } else if (g.num_edges() < all_pairs) {
      // Rejection-sample a non-adjacent pair; the loop terminates because a
      // free slot exists, and stays deterministic (every draw is from rng).
      for (;;) {
        const auto u = static_cast<graph::NodeId>(rng.index(n));
        const auto v = static_cast<graph::NodeId>(rng.index(n));
        if (u == v || g.has_edge(u, v)) continue;
        g.add_edge(u, v);
        applied.push_back({std::min(u, v), std::max(u, v), true});
        break;
      }
    }
  }
  return applied;
}

}  // namespace topo::fault
