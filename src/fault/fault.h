#pragma once

// Seeded deterministic fault injection (topo::fault).
//
// A FaultPlan describes *what* can go wrong — per-message-kind drop
// probabilities, per-link latency spikes, and node faults (unresponsive
// windows, crash/restarts that wipe the mempool) — and a FaultInjector
// makes it happen against a live p2p::Network, drawing every decision from
// streams derived with util::derive_stream_seed. The same (seed, plan)
// therefore produces byte-identical campaign reports at any --threads
// width, and a default (all-zero) plan consumes no randomness at all, so
// installing it leaves unfaulted runs byte-identical to pre-fault builds.
//
// Layering: p2p exposes the FaultHook seam; topo::fault implements it and
// may reach down into nodes (restart, unresponsive windows). topo::core
// stays independent — its FaultReport annex is plain data this header
// knows how to fill in (make_fault_report).

#include <cstdint>
#include <vector>

#include "core/schedule.h"
#include "obs/metrics.h"
#include "p2p/fault_hook.h"
#include "p2p/network.h"
#include "util/rng.h"

namespace topo::fault {

/// One scheduled node fault: at sim time `at`, regular node `node` (an
/// index into Network::regular_nodes()) goes unresponsive for `duration`
/// seconds; if `crash` is set it additionally restarts (empty mempool, no
/// fetcher state) when the window closes.
struct NodeFaultEvent {
  double at = 0.0;
  double duration = 5.0;
  size_t node = 0;
  bool crash = false;
};

/// Declarative fault configuration. All-zero (the default) means "no
/// faults": enabled() is false and an injector built from it never draws
/// from its RNG streams.
struct FaultPlan {
  double drop_tx = 0.0;        ///< P(drop) per full-transaction push
  double drop_announce = 0.0;  ///< P(drop) per hash announcement
  double drop_get_tx = 0.0;    ///< P(drop) per body request
  double spike_prob = 0.0;     ///< fraction of directed links with slow latency
  double spike_mult = 4.0;     ///< latency multiplier on spiked links
  double churn_rate = 0.0;     ///< random node faults per sim second (Poisson)
  double churn_duration = 5.0; ///< unresponsive-window length of churn faults
  double crash_fraction = 0.0; ///< P(churn fault is a crash/restart)
  std::vector<NodeFaultEvent> scheduled;  ///< explicit node faults

  bool enabled() const {
    return drop_tx > 0.0 || drop_announce > 0.0 || drop_get_tx > 0.0 ||
           spike_prob > 0.0 || churn_rate > 0.0 || !scheduled.empty();
  }
};

/// Interned `fault.*` observability handles (aggregate, like NetObs).
struct FaultObs {
  obs::Counter* drops_tx = nullptr;        ///< fault.drops.tx
  obs::Counter* drops_announce = nullptr;  ///< fault.drops.announce
  obs::Counter* drops_get_tx = nullptr;    ///< fault.drops.get_tx
  obs::Counter* spikes = nullptr;          ///< fault.spikes (delayed messages)
  obs::Counter* restarts = nullptr;        ///< fault.restarts
  obs::Counter* windows = nullptr;         ///< fault.unresponsive_windows

  static FaultObs wire(obs::MetricsRegistry& reg);
  bool enabled() const { return drops_tx != nullptr; }
};

/// Executes a FaultPlan against one Network. Construction derives the
/// decision streams from (seed); install() arms the message hook and
/// schedules the node faults on the network's simulator. The injector must
/// outlive the network's remaining sim activity (declare it after the
/// scenario/network so it is destroyed first — pending callbacks only fire
/// while the simulator runs).
class FaultInjector final : public p2p::FaultHook {
 public:
  FaultInjector(FaultPlan plan, uint64_t seed);

  /// Arms the injector: installs the message hook (only when the plan has
  /// message faults), schedules the plan's node-fault events, and starts
  /// the Poisson churn process if configured. `reg` (optional) wires the
  /// `fault.*` counters.
  void install(p2p::Network& net, obs::MetricsRegistry* reg = nullptr);

  /// Stops the churn process (pending windows still close).
  void stop() { active_ = false; }

  // p2p::FaultHook:
  bool should_drop(p2p::MsgKind kind, p2p::PeerId from, p2p::PeerId to) override;
  double latency_multiplier(p2p::MsgKind kind, p2p::PeerId from, p2p::PeerId to) override;

  const FaultPlan& plan() const { return plan_; }

  // Tallies (kept locally so tests need no metrics registry).
  uint64_t dropped_tx() const { return dropped_tx_; }
  uint64_t dropped_announce() const { return dropped_announce_; }
  uint64_t dropped_get_tx() const { return dropped_get_tx_; }
  uint64_t dropped_total() const {
    return dropped_tx_ + dropped_announce_ + dropped_get_tx_;
  }
  uint64_t spiked_messages() const { return spiked_; }
  uint64_t restarts() const { return restarts_; }
  uint64_t unresponsive_windows() const { return windows_; }

 private:
  void apply_node_fault(p2p::Network& net, size_t node_index, double duration, bool crash);
  void schedule_churn(p2p::Network& net);

  FaultPlan plan_;
  util::Rng msg_rng_;    ///< drop decisions, in message-send order
  util::Rng churn_rng_;  ///< churn gaps + victim selection
  uint64_t link_seed_;   ///< spike membership hash (stateless, order-free)
  bool active_ = false;
  FaultObs obs_;

  uint64_t dropped_tx_ = 0;
  uint64_t dropped_announce_ = 0;
  uint64_t dropped_get_tx_ = 0;
  uint64_t spiked_ = 0;
  uint64_t restarts_ = 0;
  uint64_t windows_ = 0;
};

/// Builds the config-echo half of a report's fault annex from a plan (the
/// tally half is folded in by the drivers).
core::FaultReport make_fault_report(const FaultPlan& plan, size_t retries);

/// One ground-truth topology change applied by drift_topology: the
/// undirected link (u, v) (u < v) appeared or disappeared.
struct LinkChange {
  graph::NodeId u = 0;
  graph::NodeId v = 0;
  bool added = false;

  friend bool operator==(const LinkChange&, const LinkChange&) = default;
};

/// Applies `changes` seeded link rewires to a live ground-truth graph —
/// the moving-target topology the monitoring daemon (src/monitor) tracks
/// between epochs. Changes alternate removal (a uniformly random existing
/// edge) and addition (a uniformly random non-adjacent pair), so density
/// stays roughly stable under sustained churn; every decision draws from
/// `rng`, so the drift trajectory is a pure function of (graph, changes,
/// rng state). Returns the applied changes in order. Degenerate graphs
/// (no removable edge / no addable pair) skip the impossible direction.
std::vector<LinkChange> drift_topology(graph::Graph& g, size_t changes, util::Rng& rng);

}  // namespace topo::fault
