#pragma once

#include <array>
#include <string>

#include "mempool/policy.h"

namespace topo::mempool {

/// The Ethereum client implementations profiled in paper Table 3.
enum class ClientKind { kGeth, kParity, kNethermind, kBesu, kAleth };

inline constexpr std::array<ClientKind, 5> kAllClients = {
    ClientKind::kGeth, ClientKind::kParity, ClientKind::kNethermind, ClientKind::kBesu,
    ClientKind::kAleth};

/// Static description of a client: its mempool policy (Table 3) plus the
/// propagation traits TopoShot's analysis depends on (§2, §4.1).
struct ClientProfile {
  ClientKind kind = ClientKind::kGeth;
  std::string name;
  double mainnet_share = 0.0;  ///< fraction of mainnet nodes (Table 3 col 2)
  MempoolPolicy policy;

  /// Geth >= 1.9.11 announces hashes to most peers and pushes full bodies to
  /// sqrt(peers); older clients push to everyone.
  bool supports_announcements = false;

  /// True if TopoShot can measure this client (requires R > 0, §5.1).
  bool measurable() const { return policy.replace_bump_bp > 0; }
};

/// Canonical Table 3 profile for a client.
const ClientProfile& profile_for(ClientKind kind);

/// Human-readable client name ("Geth", "Parity", ...).
const std::string& client_name(ClientKind kind);

/// Simulated web3_clientVersion string, e.g. "Geth/v1.10.3" — used by the
/// critical-node discovery step of the mainnet study (§6.3).
std::string client_version_string(ClientKind kind);

}  // namespace topo::mempool
