#include "mempool/mempool.h"

#include <algorithm>
#include <cassert>
#include <cstddef>

namespace topo::mempool {

const char* admit_code_name(AdmitCode code) {
  switch (code) {
    case AdmitCode::kAddedPending: return "added-pending";
    case AdmitCode::kAddedFuture: return "added-future";
    case AdmitCode::kReplaced: return "replaced";
    case AdmitCode::kRejectedDuplicate: return "rejected-duplicate";
    case AdmitCode::kRejectedStaleNonce: return "rejected-stale-nonce";
    case AdmitCode::kRejectedUnderpricedReplacement: return "rejected-underpriced-replacement";
    case AdmitCode::kRejectedPoolFull: return "rejected-pool-full";
    case AdmitCode::kRejectedEvictionForbidden: return "rejected-eviction-forbidden";
    case AdmitCode::kRejectedFutureLimit: return "rejected-future-limit";
    case AdmitCode::kRejectedUnderBaseFee: return "rejected-under-base-fee";
  }
  return "?";
}

PoolObs PoolObs::wire(obs::MetricsRegistry& reg) {
  PoolObs o;
  o.admits_pending = &reg.counter("mempool.admits.pending");
  o.admits_future = &reg.counter("mempool.admits.future");
  o.replacements = &reg.counter("mempool.replacements");
  o.rejects = &reg.counter("mempool.rejects");
  o.evictions = &reg.counter("mempool.evictions");
  o.evictions_price = &reg.counter("mempool.evictions.price");
  o.evictions_truncated = &reg.counter("mempool.evictions.truncated");
  o.evictions_expired = &reg.counter("mempool.evictions.expired");
  o.evictions_basefee = &reg.counter("mempool.evictions.basefee");
  o.drops_mined = &reg.counter("mempool.drops.mined");
  o.occupancy = &reg.histogram("mempool.occupancy", obs::fraction_bounds());
  o.index_compactions = &reg.counter("mempool.index.compactions");
  o.index_tombstone_peak = &reg.gauge("mempool.index.tombstone_peak");
  o.trace = &reg.trace();
  return o;
}

Mempool::Mempool(MempoolPolicy policy, const eth::StateView* state)
    : policy_(policy), state_(state) {
  assert(state_ != nullptr);
}

void Mempool::reclassify(eth::Address sender, std::vector<eth::Transaction>* promoted) {
  auto ait = accounts_.find(sender);
  if (ait == accounts_.end()) return;
  AccountQueue& q = ait->second;
  eth::Nonce expected = state_->next_nonce(sender);
  size_t futures = 0;
  for (auto& [nonce, entry] : q.txs) {
    const bool now_pending = (nonce == expected);
    if (now_pending) ++expected;
    if (now_pending && !entry.pending) {
      entry.pending = true;
      ++pending_count_;
      future_index_.erase({entry.tx.pool_price(), entry.tx.id});
      if (promoted) promoted->push_back(entry.tx);
    } else if (!now_pending && entry.pending) {
      entry.pending = false;
      --pending_count_;
      future_index_.insert({entry.tx.pool_price(), entry.tx.id});
    }
    if (!entry.pending) ++futures;
  }
  q.futures = futures;
}

eth::Transaction Mempool::remove_entry(eth::Address sender, eth::Nonce nonce) {
  auto ait = accounts_.find(sender);
  assert(ait != accounts_.end());
  auto eit = ait->second.find(nonce);
  assert(eit != ait->second.txs.end());
  Entry entry = std::move(eit->second);
  if (entry.pending) --pending_count_;
  if (!entry.pending && ait->second.futures > 0) --ait->second.futures;
  if (!entry.pending) future_index_.erase({entry.tx.pool_price(), entry.tx.id});
  price_index_.erase({entry.tx.pool_price(), entry.tx.id});
  by_id_.erase(entry.tx.id);
  by_hash_.erase(entry.tx.hash());
  ait->second.txs.erase(eit);
  if (ait->second.txs.empty()) accounts_.erase(ait);
  --size_;
  return entry.tx;
}

std::optional<std::pair<eth::Address, eth::Nonce>> Mempool::pick_victim(
    eth::Wei incoming_price, bool incoming_is_pending) const {
  auto cheaper = [&](const std::pair<eth::Wei, uint64_t>& key) {
    return key.first < incoming_price;
  };
  if (policy_.victim == EvictionVictim::kFuturesFirst && !incoming_is_pending) {
    // Futures-only eviction: a future incomer may never displace a pending
    // transaction (the DETER countermeasure; defeats TopoShot's flood).
    if (future_index_.empty()) return std::nullopt;
    const auto key = future_index_.min();
    if (!cheaper(key)) return std::nullopt;
    return by_id_.at(key.second);
  }
  if (price_index_.empty()) return std::nullopt;
  const auto key = price_index_.min();
  if (!cheaper(key)) return std::nullopt;
  return by_id_.at(key.second);
}

AdmitResult Mempool::add(const eth::Transaction& tx, double now) {
  AdmitResult result = add_impl(tx, now);
  if (obs_ != nullptr) record_admit(tx, result, now);
  return result;
}

void Mempool::record_admit(const eth::Transaction& tx, const AdmitResult& result, double now) {
  switch (result.code) {
    case AdmitCode::kAddedPending: obs_->admits_pending->inc(); break;
    case AdmitCode::kAddedFuture: obs_->admits_future->inc(); break;
    case AdmitCode::kReplaced: obs_->replacements->inc(); break;
    default: obs_->rejects->inc(); break;
  }
  if (result.replaced && obs_->trace != nullptr) {
    obs_->trace->push(now, obs::TraceKind::kTxReplaced, tx.id, result.replaced->id);
  }
  if (!result.evicted.empty()) {
    obs_->evictions->inc(result.evicted.size());
    obs_->evictions_price->inc(result.evicted.size());
    if (obs_->trace != nullptr) {
      for (const auto& e : result.evicted)
        obs_->trace->push(now, obs::TraceKind::kTxEvicted, e.id);
    }
  }
}

AdmitResult Mempool::add_impl(const eth::Transaction& tx, double now) {
  AdmitResult result;

  if (by_hash_.count(tx.hash())) {
    result.code = AdmitCode::kRejectedDuplicate;
    return result;
  }
  if (policy_.eip1559 && tx.fee1559 && tx.fee1559->max_fee < base_fee_) {
    result.code = AdmitCode::kRejectedUnderBaseFee;
    return result;
  }
  const eth::Nonce chain_next = state_->next_nonce(tx.sender);
  if (tx.nonce < chain_next) {
    result.code = AdmitCode::kRejectedStaleNonce;
    return result;
  }

  auto ait = accounts_.find(tx.sender);
  if (ait != accounts_.end()) {
    auto eit = ait->second.find(tx.nonce);
    if (eit != ait->second.txs.end()) {
      // Replacement path: same sender and nonce (§2 event 1b).
      Entry& old = eit->second;
      if (!policy_.accepts_replacement(old.tx.pool_price(), tx.pool_price())) {
        result.code = AdmitCode::kRejectedUnderpricedReplacement;
        return result;
      }
      result.replaced = old.tx;
      price_index_.erase({old.tx.pool_price(), old.tx.id});
      if (!old.pending) future_index_.erase({old.tx.pool_price(), old.tx.id});
      by_id_.erase(old.tx.id);
      by_hash_.erase(old.tx.hash());
      old.tx = tx;
      old.added_at = now;
      price_index_.insert({tx.pool_price(), tx.id});
      if (!old.pending) future_index_.insert({tx.pool_price(), tx.id});
      by_id_[tx.id] = {tx.sender, tx.nonce};
      by_hash_[tx.hash()] = tx.id;
      track_added_at(now);
      result.code = AdmitCode::kReplaced;
      return result;
    }
  }

  // Fresh entry: decide pending vs future by the consecutive-nonce rule.
  bool is_pending = (tx.nonce == chain_next);
  if (!is_pending && ait != accounts_.end()) {
    // Pending if every nonce in [chain_next, tx.nonce) is already buffered.
    eth::Nonce expected = chain_next;
    for (auto it = ait->second.lower_bound(chain_next);
         it != ait->second.txs.end() && it->first == expected && expected < tx.nonce; ++it) {
      ++expected;
    }
    is_pending = (expected == tx.nonce);
  }

  if (!is_pending) {
    const size_t have = futures_of(tx.sender);
    if (have >= policy_.max_futures_per_account) {
      result.code = AdmitCode::kRejectedFutureLimit;
      return result;
    }
  }

  if (size_ >= policy_.capacity) {
    // Eviction path (§2 event 1a). A future incomer additionally requires at
    // least P pending transactions in the pool.
    if (!is_pending && pending_count_ < policy_.min_pending_for_eviction) {
      result.code = AdmitCode::kRejectedEvictionForbidden;
      return result;
    }
    auto victim = pick_victim(tx.pool_price(), is_pending);
    if (!victim && is_pending && !future_index_.empty()) {
      // Executable transactions outrank queued ones: when the pool is full
      // and nothing is cheaper, a pending incomer still displaces the
      // cheapest *future* (Geth's pending/queue split — the queue is
      // second-class and would be truncated by the next reorg anyway).
      victim = by_id_.at(future_index_.min().second);
    }
    if (!victim) {
      result.code = AdmitCode::kRejectedPoolFull;
      return result;
    }
    result.evicted.push_back(remove_entry(victim->first, victim->second));
    // Removing a mid-queue pending entry demotes its followers.
    if (victim->first != tx.sender) reclassify(victim->first, nullptr);
  }

  Entry entry;
  entry.tx = tx;
  entry.added_at = now;
  entry.pending = false;  // reclassify() sets the final flag
  AccountQueue& q = accounts_[tx.sender];
  q.txs.insert(q.lower_bound(tx.nonce), {tx.nonce, std::move(entry)});
  ++q.futures;  // provisional; fixed by reclassify
  price_index_.insert({tx.pool_price(), tx.id});
  future_index_.insert({tx.pool_price(), tx.id});  // reclassify removes if pending
  by_id_[tx.id] = {tx.sender, tx.nonce};
  by_hash_[tx.hash()] = tx.id;
  ++size_;
  track_added_at(now);

  std::vector<eth::Transaction> promoted;
  reclassify(tx.sender, &promoted);

  // The incoming tx itself is not a "promotion"; separate it out.
  const eth::TxHash self = tx.hash();
  bool self_pending = false;
  for (auto it = promoted.begin(); it != promoted.end();) {
    if (it->hash() == self) {
      self_pending = true;
      it = promoted.erase(it);
    } else {
      ++it;
    }
  }
  result.promoted = std::move(promoted);
  result.code = self_pending ? AdmitCode::kAddedPending : AdmitCode::kAddedFuture;
  return result;
}

void Mempool::track_added_at(double now) {
  if (!min_added_valid_ || now < min_added_at_) {
    min_added_at_ = now;
    min_added_valid_ = true;
  }
}

PoolUpdate Mempool::maintain(double now) {
  PoolUpdate update;
  if (obs_ != nullptr && obs_->occupancy != nullptr && policy_.capacity > 0) {
    obs_->occupancy->observe(static_cast<double>(size_) /
                             static_cast<double>(policy_.capacity));
  }

  // 1. Expiry (Geth drops unconfirmed transactions after e hours). The
  // min_added_at_ guard makes the common no-expiry call O(1).
  if (policy_.expiry_seconds > 0.0 && min_added_valid_ &&
      min_added_at_ + policy_.expiry_seconds <= now) {
    std::vector<std::pair<eth::Address, eth::Nonce>> expired;
    double oldest_remaining = now;
    for (const auto& [sender, q] : accounts_) {
      for (const auto& [nonce, entry] : q.txs) {
        if (entry.added_at + policy_.expiry_seconds <= now) {
          expired.emplace_back(sender, nonce);
        } else {
          oldest_remaining = std::min(oldest_remaining, entry.added_at);
        }
      }
    }
    for (const auto& [sender, nonce] : expired) {
      update.dropped.push_back(remove_entry(sender, nonce));
      reclassify(sender, nullptr);
    }
    if (obs_ != nullptr && !expired.empty()) {
      obs_->evictions->inc(expired.size());
      obs_->evictions_expired->inc(expired.size());
    }
    min_added_at_ = oldest_remaining;
    min_added_valid_ = size_ > 0;
  }

  // 2. EIP-1559: entries whose max fee fell below the base fee are dropped.
  // Only rescanned when the base fee actually moved.
  if (policy_.eip1559 && base_fee_ > 0 && base_fee_ != last_pruned_base_fee_) {
    std::vector<std::pair<eth::Address, eth::Nonce>> under;
    for (const auto& [sender, q] : accounts_) {
      for (const auto& [nonce, entry] : q.txs) {
        if (entry.tx.fee1559 && entry.tx.fee1559->max_fee < base_fee_)
          under.emplace_back(sender, nonce);
      }
    }
    for (const auto& [sender, nonce] : under) {
      update.dropped.push_back(remove_entry(sender, nonce));
      reclassify(sender, nullptr);
    }
    if (obs_ != nullptr && !under.empty()) {
      obs_->evictions->inc(under.size());
      obs_->evictions_basefee->inc(under.size());
    }
    last_pruned_base_fee_ = base_fee_;
  }

  // 3. Future-subpool truncation to future_cap, cheapest first.
  size_t truncated = 0;
  while (future_count() > policy_.future_cap && !future_index_.empty()) {
    const auto key = future_index_.min();
    const auto loc = by_id_.at(key.second);
    update.dropped.push_back(remove_entry(loc.first, loc.second));
    reclassify(loc.first, nullptr);
    ++truncated;
  }
  if (obs_ != nullptr && truncated > 0) {
    obs_->evictions->inc(truncated);
    obs_->evictions_truncated->inc(truncated);
    if (obs_->trace != nullptr) {
      for (auto it = update.dropped.end() - static_cast<ptrdiff_t>(truncated);
           it != update.dropped.end(); ++it) {
        obs_->trace->push(now, obs::TraceKind::kTxEvicted, it->id);
      }
    }
  }

  return update;
}

PoolUpdate Mempool::on_block() {
  PoolUpdate update;
  // Drop entries the chain has consumed (mined or made stale), account by
  // account, then re-run classification to promote unblocked futures.
  std::vector<eth::Address> senders;
  senders.reserve(accounts_.size());
  for (const auto& [sender, q] : accounts_) senders.push_back(sender);
  for (eth::Address sender : senders) {
    const eth::Nonce next = state_->next_nonce(sender);
    auto ait = accounts_.find(sender);
    if (ait == accounts_.end()) continue;
    std::vector<eth::Nonce> stale;
    for (const auto& [nonce, entry] : ait->second.txs) {
      if (nonce < next) stale.push_back(nonce);
      else break;  // map is nonce-ordered
    }
    for (eth::Nonce n : stale) update.dropped.push_back(remove_entry(sender, n));
    reclassify(sender, &update.promoted);
  }
  if (obs_ != nullptr && !update.dropped.empty()) obs_->drops_mined->inc(update.dropped.size());
  return update;
}

const eth::Transaction* Mempool::find(eth::Address sender, eth::Nonce nonce) const {
  auto ait = accounts_.find(sender);
  if (ait == accounts_.end()) return nullptr;
  auto eit = ait->second.find(nonce);
  return eit == ait->second.txs.end() ? nullptr : &eit->second.tx;
}

const eth::Transaction* Mempool::find_hash(eth::TxHash h) const {
  auto it = by_hash_.find(h);
  if (it == by_hash_.end()) return nullptr;
  const auto loc = by_id_.at(it->second);
  return find(loc.first, loc.second);
}

size_t Mempool::futures_of(eth::Address sender) const {
  auto it = accounts_.find(sender);
  return it == accounts_.end() ? 0 : it->second.futures;
}

eth::Wei Mempool::lowest_price() const {
  return price_index_.empty() ? 0 : price_index_.min().first;
}

eth::Wei Mempool::median_pending_price() const {
  std::vector<eth::Wei> prices;
  prices.reserve(pending_count_);
  for (const auto& [sender, q] : accounts_) {
    for (const auto& [nonce, entry] : q.txs) {
      if (entry.pending) prices.push_back(entry.tx.pool_price());
    }
  }
  if (prices.empty()) return 0;
  std::sort(prices.begin(), prices.end());
  return prices[prices.size() / 2];
}

std::vector<eth::Transaction> Mempool::pending_snapshot() const {
  std::vector<eth::Transaction> out;
  out.reserve(pending_count_);
  for (const auto& [sender, q] : accounts_) {
    for (const auto& [nonce, entry] : q.txs) {
      if (entry.pending) out.push_back(entry.tx);
    }
  }
  return out;
}

const eth::Transaction* Mempool::random_pending(util::Rng& rng) const {
  if (pending_count_ == 0) return nullptr;
  size_t k = rng.index(pending_count_);
  // Same iteration order as pending_snapshot(), so the k-th pending entry
  // here is the entry snapshot[k] would hold.
  for (const auto& [sender, q] : accounts_) {
    for (const auto& [nonce, entry] : q.txs) {
      if (!entry.pending) continue;
      if (k == 0) return &entry.tx;
      --k;
    }
  }
  return nullptr;  // unreachable while pending_count_ is consistent
}

void Mempool::clear() {
  accounts_.clear();
  price_index_.clear();
  future_index_.clear();
  by_id_.clear();
  by_hash_.clear();
  size_ = 0;
  pending_count_ = 0;
  min_added_at_ = 0.0;
  min_added_valid_ = false;
}

std::vector<eth::Transaction> Mempool::future_snapshot() const {
  std::vector<eth::Transaction> out;
  out.reserve(future_count());
  for (const auto& [sender, q] : accounts_) {
    for (const auto& [nonce, entry] : q.txs) {
      if (!entry.pending) out.push_back(entry.tx);
    }
  }
  return out;
}

std::vector<eth::Transaction> Mempool::all_snapshot() const {
  std::vector<eth::Transaction> out;
  out.reserve(size_);
  for (const auto& [sender, q] : accounts_) {
    for (const auto& [nonce, entry] : q.txs) out.push_back(entry.tx);
  }
  return out;
}

}  // namespace topo::mempool
