#include "mempool/mempool.h"

#include <algorithm>
#include <cassert>
#include <cstddef>

namespace topo::mempool {

const char* admit_code_name(AdmitCode code) {
  switch (code) {
    case AdmitCode::kAddedPending: return "added-pending";
    case AdmitCode::kAddedFuture: return "added-future";
    case AdmitCode::kReplaced: return "replaced";
    case AdmitCode::kRejectedDuplicate: return "rejected-duplicate";
    case AdmitCode::kRejectedStaleNonce: return "rejected-stale-nonce";
    case AdmitCode::kRejectedUnderpricedReplacement: return "rejected-underpriced-replacement";
    case AdmitCode::kRejectedPoolFull: return "rejected-pool-full";
    case AdmitCode::kRejectedEvictionForbidden: return "rejected-eviction-forbidden";
    case AdmitCode::kRejectedFutureLimit: return "rejected-future-limit";
    case AdmitCode::kRejectedUnderBaseFee: return "rejected-under-base-fee";
  }
  return "?";
}

PoolObs PoolObs::wire(obs::MetricsRegistry& reg) {
  PoolObs o;
  o.admits_pending = &reg.counter("mempool.admits.pending");
  o.admits_future = &reg.counter("mempool.admits.future");
  o.replacements = &reg.counter("mempool.replacements");
  o.rejects = &reg.counter("mempool.rejects");
  o.evictions = &reg.counter("mempool.evictions");
  o.evictions_price = &reg.counter("mempool.evictions.price");
  o.evictions_truncated = &reg.counter("mempool.evictions.truncated");
  o.evictions_expired = &reg.counter("mempool.evictions.expired");
  o.evictions_basefee = &reg.counter("mempool.evictions.basefee");
  o.drops_mined = &reg.counter("mempool.drops.mined");
  o.occupancy = &reg.histogram("mempool.occupancy", obs::fraction_bounds());
  o.index_compactions = &reg.counter("mempool.index.compactions");
  o.index_tombstone_peak = &reg.gauge("mempool.index.tombstone_peak");
  o.trace = &reg.trace();
  return o;
}

Mempool::Mempool(MempoolPolicy policy, const eth::StateView* state)
    : policy_(policy), state_(state) {
  assert(state_ != nullptr);
}

const Mempool::AccountQueue* Mempool::account(const State& s, eth::Address sender) {
  auto it = s.slot_of.find(sender);
  return it == s.slot_of.end() ? nullptr : &s.slot_queue[it->second];
}

Mempool::AccountQueue* Mempool::account(State& s, eth::Address sender) {
  auto it = s.slot_of.find(sender);
  return it == s.slot_of.end() ? nullptr : &s.slot_queue[it->second];
}

Mempool::AccountQueue& Mempool::ensure_account(State& s, eth::Address sender) {
  auto it = s.slot_of.find(sender);
  if (it != s.slot_of.end()) return s.slot_queue[it->second];
  uint32_t slot;
  if (!s.free_slots.empty()) {
    slot = s.free_slots.back();
    s.free_slots.pop_back();
    s.slot_addr[slot] = sender;
  } else {
    slot = static_cast<uint32_t>(s.slot_addr.size());
    s.slot_addr.push_back(sender);
    s.slot_queue.emplace_back();
  }
  s.slot_of.emplace(sender, slot);
  return s.slot_queue[slot];
}

void Mempool::release_account(State& s, eth::Address sender) {
  auto it = s.slot_of.find(sender);
  assert(it != s.slot_of.end());
  const uint32_t slot = it->second;
  assert(s.slot_queue[slot].txs.empty());
  s.slot_addr[slot] = eth::kNoAddress;
  s.slot_queue[slot] = AccountQueue{};  // release the queue's allocation
  s.free_slots.push_back(slot);
  s.slot_of.erase(it);
}

void Mempool::reclassify(State& s, eth::Address sender,
                         std::vector<eth::Transaction>* promoted) {
  AccountQueue* qp = account(s, sender);
  if (qp == nullptr) return;
  AccountQueue& q = *qp;
  eth::Nonce expected = state_->next_nonce(sender);
  size_t futures = 0;
  for (auto& [nonce, entry] : q.txs) {
    const bool now_pending = (nonce == expected);
    if (now_pending) ++expected;
    if (now_pending && !entry.pending) {
      entry.pending = true;
      ++s.pending_count;
      s.future_index.erase({entry.tx.pool_price(), entry.tx.id}, index_compactions(),
                           index_tombstone_peak());
      if (promoted) promoted->push_back(entry.tx);
    } else if (!now_pending && entry.pending) {
      entry.pending = false;
      --s.pending_count;
      s.future_index.insert({entry.tx.pool_price(), entry.tx.id});
    }
    if (!entry.pending) ++futures;
  }
  q.futures = futures;
}

eth::Transaction Mempool::remove_entry(State& s, eth::Address sender, eth::Nonce nonce) {
  AccountQueue* qp = account(s, sender);
  assert(qp != nullptr);
  auto eit = qp->find(nonce);
  assert(eit != qp->txs.end());
  Entry entry = std::move(eit->second);
  if (entry.pending) --s.pending_count;
  if (!entry.pending && qp->futures > 0) --qp->futures;
  if (!entry.pending) {
    s.future_index.erase({entry.tx.pool_price(), entry.tx.id}, index_compactions(),
                         index_tombstone_peak());
  }
  s.price_index.erase({entry.tx.pool_price(), entry.tx.id}, index_compactions(),
                      index_tombstone_peak());
  s.by_id.erase(entry.tx.id);
  s.by_hash.erase(entry.tx.hash());
  qp->txs.erase(eit);
  if (qp->txs.empty()) release_account(s, sender);
  --s.size;
  return entry.tx;
}

std::optional<std::pair<eth::Address, eth::Nonce>> Mempool::pick_victim(
    State& s, eth::Wei incoming_price, bool incoming_is_pending) {
  auto cheaper = [&](const std::pair<eth::Wei, uint64_t>& key) {
    return key.first < incoming_price;
  };
  if (policy_.victim == EvictionVictim::kFuturesFirst && !incoming_is_pending) {
    // Futures-only eviction: a future incomer may never displace a pending
    // transaction (the DETER countermeasure; defeats TopoShot's flood).
    if (s.future_index.empty()) return std::nullopt;
    const auto key = s.future_index.min();
    if (!cheaper(key)) return std::nullopt;
    return s.by_id.at(key.second);
  }
  if (s.price_index.empty()) return std::nullopt;
  const auto key = s.price_index.min();
  if (!cheaper(key)) return std::nullopt;
  return s.by_id.at(key.second);
}

AdmitResult Mempool::add(const eth::Transaction& tx, double now) {
  AdmitResult result = add_impl(tx, now);
  if (obs_ != nullptr) record_admit(tx, result, now);
  return result;
}

void Mempool::record_admit(const eth::Transaction& tx, const AdmitResult& result, double now) {
  switch (result.code) {
    case AdmitCode::kAddedPending: obs_->admits_pending->inc(); break;
    case AdmitCode::kAddedFuture: obs_->admits_future->inc(); break;
    case AdmitCode::kReplaced: obs_->replacements->inc(); break;
    default: obs_->rejects->inc(); break;
  }
  if (result.replaced && obs_->trace != nullptr) {
    obs_->trace->push(now, obs::TraceKind::kTxReplaced, tx.id, result.replaced->id);
  }
  if (!result.evicted.empty()) {
    obs_->evictions->inc(result.evicted.size());
    obs_->evictions_price->inc(result.evicted.size());
    if (obs_->trace != nullptr) {
      for (const auto& e : result.evicted)
        obs_->trace->push(now, obs::TraceKind::kTxEvicted, e.id);
    }
  }
}

AdmitResult Mempool::add_impl(const eth::Transaction& tx, double now) {
  AdmitResult result;

  // Read-only early-outs run against the shared state: a forked pool that
  // only ever rejects duplicates/stale nonces never clones its base.
  const State& cs = *st_;
  if (cs.by_hash.count(tx.hash())) {
    result.code = AdmitCode::kRejectedDuplicate;
    return result;
  }
  if (policy_.eip1559 && tx.fee1559 && tx.fee1559->max_fee < base_fee_) {
    result.code = AdmitCode::kRejectedUnderBaseFee;
    return result;
  }
  const eth::Nonce chain_next = state_->next_nonce(tx.sender);
  if (tx.nonce < chain_next) {
    result.code = AdmitCode::kRejectedStaleNonce;
    return result;
  }

  const AccountQueue* cq = account(cs, tx.sender);
  if (cq != nullptr) {
    auto eit = cq->find(tx.nonce);
    if (eit != cq->txs.end()) {
      // Replacement path: same sender and nonce (§2 event 1b).
      if (!policy_.accepts_replacement(eit->second.tx.pool_price(), tx.pool_price())) {
        result.code = AdmitCode::kRejectedUnderpricedReplacement;
        return result;
      }
      State& s = st_.mutate();
      Entry& old = account(s, tx.sender)->find(tx.nonce)->second;
      result.replaced = old.tx;
      s.price_index.erase({old.tx.pool_price(), old.tx.id}, index_compactions(),
                          index_tombstone_peak());
      if (!old.pending) {
        s.future_index.erase({old.tx.pool_price(), old.tx.id}, index_compactions(),
                             index_tombstone_peak());
      }
      s.by_id.erase(old.tx.id);
      s.by_hash.erase(old.tx.hash());
      old.tx = tx;
      old.added_at = now;
      s.price_index.insert({tx.pool_price(), tx.id});
      if (!old.pending) s.future_index.insert({tx.pool_price(), tx.id});
      s.by_id[tx.id] = {tx.sender, tx.nonce};
      s.by_hash[tx.hash()] = tx.id;
      track_added_at(s, now);
      result.code = AdmitCode::kReplaced;
      return result;
    }
  }

  // Fresh entry: decide pending vs future by the consecutive-nonce rule.
  bool is_pending = (tx.nonce == chain_next);
  if (!is_pending && cq != nullptr) {
    // Pending if every nonce in [chain_next, tx.nonce) is already buffered.
    eth::Nonce expected = chain_next;
    auto it = std::lower_bound(cq->txs.begin(), cq->txs.end(), chain_next,
                               [](const auto& e, eth::Nonce v) { return e.first < v; });
    for (; it != cq->txs.end() && it->first == expected && expected < tx.nonce; ++it) {
      ++expected;
    }
    is_pending = (expected == tx.nonce);
  }

  if (!is_pending) {
    const size_t have = cq != nullptr ? cq->futures : 0;
    if (have >= policy_.max_futures_per_account) {
      result.code = AdmitCode::kRejectedFutureLimit;
      return result;
    }
  }
  if (cs.size >= policy_.capacity && !is_pending &&
      cs.pending_count < policy_.min_pending_for_eviction) {
    // Eviction gate (§2 event 1a): a future incomer additionally requires
    // at least P pending transactions in the pool.
    result.code = AdmitCode::kRejectedEvictionForbidden;
    return result;
  }

  // Every remaining outcome mutates (victim selection reads the price
  // heaps, which settle lazy deletions — a physical write).
  State& s = st_.mutate();
  if (s.size >= policy_.capacity) {
    auto victim = pick_victim(s, tx.pool_price(), is_pending);
    if (!victim && is_pending && !s.future_index.empty()) {
      // Executable transactions outrank queued ones: when the pool is full
      // and nothing is cheaper, a pending incomer still displaces the
      // cheapest *future* (Geth's pending/queue split — the queue is
      // second-class and would be truncated by the next reorg anyway).
      victim = s.by_id.at(s.future_index.min().second);
    }
    if (!victim) {
      result.code = AdmitCode::kRejectedPoolFull;
      return result;
    }
    result.evicted.push_back(remove_entry(s, victim->first, victim->second));
    // Removing a mid-queue pending entry demotes its followers.
    if (victim->first != tx.sender) reclassify(s, victim->first, nullptr);
  }

  Entry entry;
  entry.tx = tx;
  entry.added_at = now;
  entry.pending = false;  // reclassify() sets the final flag
  AccountQueue& q = ensure_account(s, tx.sender);
  q.txs.insert(q.lower_bound(tx.nonce), {tx.nonce, std::move(entry)});
  ++q.futures;  // provisional; fixed by reclassify
  s.price_index.insert({tx.pool_price(), tx.id});
  s.future_index.insert({tx.pool_price(), tx.id});  // reclassify removes if pending
  s.by_id[tx.id] = {tx.sender, tx.nonce};
  s.by_hash[tx.hash()] = tx.id;
  ++s.size;
  track_added_at(s, now);

  std::vector<eth::Transaction> promoted;
  reclassify(s, tx.sender, &promoted);

  // The incoming tx itself is not a "promotion"; separate it out.
  const eth::TxHash self = tx.hash();
  bool self_pending = false;
  for (auto it = promoted.begin(); it != promoted.end();) {
    if (it->hash() == self) {
      self_pending = true;
      it = promoted.erase(it);
    } else {
      ++it;
    }
  }
  result.promoted = std::move(promoted);
  result.code = self_pending ? AdmitCode::kAddedPending : AdmitCode::kAddedFuture;
  return result;
}

void Mempool::track_added_at(State& s, double now) {
  if (!s.min_added_valid || now < s.min_added_at) {
    s.min_added_at = now;
    s.min_added_valid = true;
  }
}

PoolUpdate Mempool::maintain(double now) {
  PoolUpdate update;
  const State& cs = *st_;
  if (obs_ != nullptr && obs_->occupancy != nullptr && policy_.capacity > 0) {
    obs_->occupancy->observe(static_cast<double>(cs.size) /
                             static_cast<double>(policy_.capacity));
  }

  // Each phase checks its guard against the shared state first; the idle
  // maintenance tick of an untouched forked pool stays read-only (no
  // copy-on-write clone).

  // 1. Expiry (Geth drops unconfirmed transactions after e hours). The
  // min_added_at guard makes the common no-expiry call O(1).
  if (policy_.expiry_seconds > 0.0 && cs.min_added_valid &&
      cs.min_added_at + policy_.expiry_seconds <= now) {
    State& s = st_.mutate();
    std::vector<std::pair<eth::Address, eth::Nonce>> expired;
    double oldest_remaining = now;
    for (size_t slot = 0; slot < s.slot_addr.size(); ++slot) {
      if (s.slot_addr[slot] == eth::kNoAddress) continue;
      for (const auto& [nonce, entry] : s.slot_queue[slot].txs) {
        if (entry.added_at + policy_.expiry_seconds <= now) {
          expired.emplace_back(s.slot_addr[slot], nonce);
        } else {
          oldest_remaining = std::min(oldest_remaining, entry.added_at);
        }
      }
    }
    for (const auto& [sender, nonce] : expired) {
      update.dropped.push_back(remove_entry(s, sender, nonce));
      reclassify(s, sender, nullptr);
    }
    if (obs_ != nullptr && !expired.empty()) {
      obs_->evictions->inc(expired.size());
      obs_->evictions_expired->inc(expired.size());
    }
    s.min_added_at = oldest_remaining;
    s.min_added_valid = s.size > 0;
  }

  // 2. EIP-1559: entries whose max fee fell below the base fee are dropped.
  // Only rescanned when the base fee actually moved.
  if (policy_.eip1559 && base_fee_ > 0 && base_fee_ != cs.last_pruned_base_fee) {
    State& s = st_.mutate();
    std::vector<std::pair<eth::Address, eth::Nonce>> under;
    for (size_t slot = 0; slot < s.slot_addr.size(); ++slot) {
      if (s.slot_addr[slot] == eth::kNoAddress) continue;
      for (const auto& [nonce, entry] : s.slot_queue[slot].txs) {
        if (entry.tx.fee1559 && entry.tx.fee1559->max_fee < base_fee_)
          under.emplace_back(s.slot_addr[slot], nonce);
      }
    }
    for (const auto& [sender, nonce] : under) {
      update.dropped.push_back(remove_entry(s, sender, nonce));
      reclassify(s, sender, nullptr);
    }
    if (obs_ != nullptr && !under.empty()) {
      obs_->evictions->inc(under.size());
      obs_->evictions_basefee->inc(under.size());
    }
    s.last_pruned_base_fee = base_fee_;
  }

  // 3. Future-subpool truncation to future_cap, cheapest first.
  size_t truncated = 0;
  if (st_->size - st_->pending_count > policy_.future_cap && !st_->future_index.empty()) {
    State& s = st_.mutate();
    while (s.size - s.pending_count > policy_.future_cap && !s.future_index.empty()) {
      const auto key = s.future_index.min();
      const auto loc = s.by_id.at(key.second);
      update.dropped.push_back(remove_entry(s, loc.first, loc.second));
      reclassify(s, loc.first, nullptr);
      ++truncated;
    }
  }
  if (obs_ != nullptr && truncated > 0) {
    obs_->evictions->inc(truncated);
    obs_->evictions_truncated->inc(truncated);
    if (obs_->trace != nullptr) {
      for (auto it = update.dropped.end() - static_cast<ptrdiff_t>(truncated);
           it != update.dropped.end(); ++it) {
        obs_->trace->push(now, obs::TraceKind::kTxEvicted, it->id);
      }
    }
  }

  return update;
}

PoolUpdate Mempool::on_block() {
  PoolUpdate update;

  // Read-only pre-scan: does the committed block touch this pool at all?
  // Pools on nodes the block's senders never reached skip the
  // copy-on-write clone entirely.
  const State& cs = *st_;
  bool dirty = false;
  for (size_t slot = 0; slot < cs.slot_addr.size() && !dirty; ++slot) {
    if (cs.slot_addr[slot] == eth::kNoAddress) continue;
    eth::Nonce expected = state_->next_nonce(cs.slot_addr[slot]);
    for (const auto& [nonce, entry] : cs.slot_queue[slot].txs) {
      if (nonce < expected) {
        dirty = true;  // stale entry to drop
        break;
      }
      const bool now_pending = (nonce == expected);
      if (now_pending) ++expected;
      if (now_pending != entry.pending) {
        dirty = true;  // classification change (promotion/demotion)
        break;
      }
    }
  }
  if (!dirty) return update;

  // Drop entries the chain has consumed (mined or made stale), account by
  // account, then re-run classification to promote unblocked futures.
  State& s = st_.mutate();
  std::vector<eth::Address> senders;
  senders.reserve(s.slot_of.size());
  for (size_t slot = 0; slot < s.slot_addr.size(); ++slot) {
    if (s.slot_addr[slot] != eth::kNoAddress) senders.push_back(s.slot_addr[slot]);
  }
  for (eth::Address sender : senders) {
    const eth::Nonce next = state_->next_nonce(sender);
    AccountQueue* qp = account(s, sender);
    if (qp == nullptr) continue;
    std::vector<eth::Nonce> stale;
    for (const auto& [nonce, entry] : qp->txs) {
      if (nonce < next) stale.push_back(nonce);
      else break;  // queue is nonce-ordered
    }
    for (eth::Nonce n : stale) update.dropped.push_back(remove_entry(s, sender, n));
    reclassify(s, sender, &update.promoted);
  }
  if (obs_ != nullptr && !update.dropped.empty()) obs_->drops_mined->inc(update.dropped.size());
  return update;
}

const eth::Transaction* Mempool::find(eth::Address sender, eth::Nonce nonce) const {
  const AccountQueue* q = account(*st_, sender);
  if (q == nullptr) return nullptr;
  auto eit = q->find(nonce);
  return eit == q->txs.end() ? nullptr : &eit->second.tx;
}

const eth::Transaction* Mempool::find_hash(eth::TxHash h) const {
  const State& s = *st_;
  auto it = s.by_hash.find(h);
  if (it == s.by_hash.end()) return nullptr;
  const auto loc = s.by_id.at(it->second);
  return find(loc.first, loc.second);
}

size_t Mempool::futures_of(eth::Address sender) const {
  const AccountQueue* q = account(*st_, sender);
  return q == nullptr ? 0 : q->futures;
}

eth::Wei Mempool::lowest_price() const {
  // Slot-order scan instead of price_index.min(): reading the heap settles
  // lazy deletions, which would physically write through the shared
  // copy-on-write handle.
  const State& s = *st_;
  if (s.size == 0) return 0;
  eth::Wei best = 0;
  bool found = false;
  for (size_t slot = 0; slot < s.slot_addr.size(); ++slot) {
    if (s.slot_addr[slot] == eth::kNoAddress) continue;
    for (const auto& [nonce, entry] : s.slot_queue[slot].txs) {
      const eth::Wei p = entry.tx.pool_price();
      if (!found || p < best) {
        best = p;
        found = true;
      }
    }
  }
  return best;
}

eth::Wei Mempool::median_pending_price() const {
  const State& s = *st_;
  std::vector<eth::Wei> prices;
  prices.reserve(s.pending_count);
  for (size_t slot = 0; slot < s.slot_addr.size(); ++slot) {
    if (s.slot_addr[slot] == eth::kNoAddress) continue;
    for (const auto& [nonce, entry] : s.slot_queue[slot].txs) {
      if (entry.pending) prices.push_back(entry.tx.pool_price());
    }
  }
  if (prices.empty()) return 0;
  std::sort(prices.begin(), prices.end());
  return prices[prices.size() / 2];
}

std::vector<eth::Transaction> Mempool::pending_snapshot() const {
  const State& s = *st_;
  std::vector<eth::Transaction> out;
  out.reserve(s.pending_count);
  for (size_t slot = 0; slot < s.slot_addr.size(); ++slot) {
    if (s.slot_addr[slot] == eth::kNoAddress) continue;
    for (const auto& [nonce, entry] : s.slot_queue[slot].txs) {
      if (entry.pending) out.push_back(entry.tx);
    }
  }
  return out;
}

const eth::Transaction* Mempool::random_pending(util::Rng& rng) const {
  const State& s = *st_;
  if (s.pending_count == 0) return nullptr;
  size_t k = rng.index(s.pending_count);
  // Same iteration order as pending_snapshot(), so the k-th pending entry
  // here is the entry snapshot[k] would hold.
  for (size_t slot = 0; slot < s.slot_addr.size(); ++slot) {
    if (s.slot_addr[slot] == eth::kNoAddress) continue;
    for (const auto& [nonce, entry] : s.slot_queue[slot].txs) {
      if (!entry.pending) continue;
      if (k == 0) return &entry.tx;
      --k;
    }
  }
  return nullptr;  // unreachable while pending_count is consistent
}

void Mempool::clear() {
  // A fresh handle instead of clearing in place: drops the shared base
  // world's pages instantly and releases every allocation.
  st_ = util::Cow<State>();
}

std::vector<eth::Transaction> Mempool::future_snapshot() const {
  const State& s = *st_;
  std::vector<eth::Transaction> out;
  out.reserve(s.size - s.pending_count);
  for (size_t slot = 0; slot < s.slot_addr.size(); ++slot) {
    if (s.slot_addr[slot] == eth::kNoAddress) continue;
    for (const auto& [nonce, entry] : s.slot_queue[slot].txs) {
      if (!entry.pending) out.push_back(entry.tx);
    }
  }
  return out;
}

std::vector<eth::Transaction> Mempool::all_snapshot() const {
  const State& s = *st_;
  std::vector<eth::Transaction> out;
  out.reserve(s.size);
  for (size_t slot = 0; slot < s.slot_addr.size(); ++slot) {
    if (s.slot_addr[slot] == eth::kNoAddress) continue;
    for (const auto& [nonce, entry] : s.slot_queue[slot].txs) out.push_back(entry.tx);
  }
  return out;
}

}  // namespace topo::mempool
