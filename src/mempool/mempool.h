#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "eth/account.h"
#include "eth/transaction.h"
#include "mempool/flat_index.h"
#include "mempool/policy.h"
#include "obs/metrics.h"
#include "util/cow.h"
#include "util/rng.h"

namespace topo::mempool {

/// Interned observability handles shared by every pool of one world (the
/// registry aggregates across nodes; per-node metrics would explode
/// cardinality at network scale). All pointers may be null; a pool without
/// obs wiring pays only one branch per operation.
struct PoolObs {
  obs::Counter* admits_pending = nullptr;
  obs::Counter* admits_future = nullptr;
  obs::Counter* replacements = nullptr;
  obs::Counter* rejects = nullptr;
  obs::Counter* evictions = nullptr;            ///< all removals below, summed
  obs::Counter* evictions_price = nullptr;      ///< displaced by a pricier incomer
  obs::Counter* evictions_truncated = nullptr;  ///< future-subpool truncation
  obs::Counter* evictions_expired = nullptr;    ///< lifetime `e` exceeded
  obs::Counter* evictions_basefee = nullptr;    ///< EIP-1559 underpriced drop
  obs::Counter* drops_mined = nullptr;          ///< consumed by a block
  obs::Histogram* occupancy = nullptr;          ///< size/capacity at maintenance
  obs::Counter* index_compactions = nullptr;    ///< flat-index tombstone rebuilds
  obs::Gauge* index_tombstone_peak = nullptr;   ///< deepest tombstone heap (high-water only)
  obs::TraceRing* trace = nullptr;

  /// Interns the `mempool.*` handles in `reg` (idempotent).
  static PoolObs wire(obs::MetricsRegistry& reg);
};

/// Outcome of offering a transaction to the pool.
enum class AdmitCode {
  kAddedPending,                   ///< admitted, executable, will be propagated
  kAddedFuture,                    ///< admitted with a nonce gap, not propagated
  kReplaced,                       ///< replaced a same-sender same-nonce entry
  kRejectedDuplicate,              ///< hash already known
  kRejectedStaleNonce,             ///< nonce already confirmed on chain
  kRejectedUnderpricedReplacement, ///< bump below R
  kRejectedPoolFull,               ///< full and incoming price <= cheapest entry
  kRejectedEvictionForbidden,      ///< full, future incomer, pending count < P
  kRejectedFutureLimit,            ///< sender already has U futures
  kRejectedUnderBaseFee,           ///< EIP-1559 max fee below current base fee
};

const char* admit_code_name(AdmitCode code);

/// Result of Mempool::add. `evicted`/`replaced` let the owning node account
/// for what left the pool; `promoted` lists futures that this admission made
/// executable (the node must propagate those too, as real clients do).
struct AdmitResult {
  AdmitCode code = AdmitCode::kRejectedDuplicate;
  std::vector<eth::Transaction> evicted;
  std::optional<eth::Transaction> replaced;
  std::vector<eth::Transaction> promoted;

  /// True if the transaction now sits in the pool as pending (and should be
  /// propagated).
  bool admitted_pending() const {
    return code == AdmitCode::kAddedPending || code == AdmitCode::kReplaced;
  }
  bool admitted() const { return admitted_pending() || code == AdmitCode::kAddedFuture; }
};

/// Changes made by maintenance or a block commit.
struct PoolUpdate {
  std::vector<eth::Transaction> dropped;   ///< truncated / expired / mined / stale
  std::vector<eth::Transaction> promoted;  ///< future -> pending transitions
};

/// The parameterized unconfirmed-transaction buffer of paper §2/§5.1.
///
/// Semantics implemented:
///  - pending/future classification against a StateView (consecutive nonce
///    run from the confirmed next nonce);
///  - replacement: same (sender, nonce), price bump >= R;
///  - eviction: a full pool admits a higher-priced transaction by evicting
///    the policy's victim, gated by P (future incomers) and U (future count
///    per sender);
///  - deferred maintenance: future-subpool truncation to `future_cap`,
///    expiry after `e` seconds, EIP-1559 underpriced drops;
///  - block commits prune mined/stale entries and promote unblocked futures.
///
/// Storage layout: all bulk state (account queues, price indexes, lookup
/// maps, occupancy counters) lives in one `State` blob behind a
/// copy-on-write handle (util::Cow). `snapshot()` captures the pool in O(1);
/// a restored pool shares the blob with its base until the first mutation,
/// which clones it once. Account queues are struct-of-arrays: parallel
/// `slot_addr`/`slot_queue` vectors with a LIFO free list, so account
/// iteration (snapshots, maintenance sweeps, random picks) runs in slot
/// order — deterministic across standard libraries and identical between a
/// forked world and a rebuilt one, unlike hash-map order.
///
/// The pool never owns the StateView; callers guarantee it outlives the pool.
class Mempool {
 public:
  Mempool(MempoolPolicy policy, const eth::StateView* state);

  /// Offers a transaction at simulation time `now`.
  AdmitResult add(const eth::Transaction& tx, double now);

  /// Attaches shared observability handles (null detaches). The pointee
  /// must outlive the pool; typically owned by the p2p::Network. Obs
  /// handles live outside the copy-on-write state on purpose: a forked
  /// world re-wires its own registry without touching shared pages.
  void set_obs(const PoolObs* o) { obs_ = o; }

  /// Deferred maintenance (Geth's reorg loop): truncates the future subpool,
  /// drops expired entries, and (EIP-1559) drops entries priced under the
  /// base fee.
  PoolUpdate maintain(double now);

  /// Reacts to a committed block: drops entries whose nonce the chain has
  /// consumed and promotes newly executable futures. The StateView must
  /// already reflect the block.
  PoolUpdate on_block();

  /// Updates the base fee used for EIP-1559 admission (no-op otherwise).
  void set_base_fee(eth::Wei base_fee) { base_fee_ = base_fee; }
  eth::Wei base_fee() const { return base_fee_; }

  bool contains(eth::TxHash h) const { return st_->by_hash.count(h) > 0; }
  const eth::Transaction* find(eth::Address sender, eth::Nonce nonce) const;
  const eth::Transaction* find_hash(eth::TxHash h) const;

  size_t size() const { return st_->size; }
  size_t pending_count() const { return st_->pending_count; }
  size_t future_count() const { return st_->size - st_->pending_count; }
  size_t futures_of(eth::Address sender) const;
  bool full() const { return st_->size >= policy_.capacity; }

  /// Cheapest pool price currently buffered (0 when empty). Physically
  /// const (slot-order scan), so it is safe on a state shared with forks.
  eth::Wei lowest_price() const;

  /// Median pool price of pending entries — the paper's Y estimator (§5.2.1).
  eth::Wei median_pending_price() const;

  /// Snapshot of pending transactions (miner candidates).
  std::vector<eth::Transaction> pending_snapshot() const;

  /// One uniformly random pending transaction, or nullptr when none are
  /// buffered. Draws a single index and walks to it in pending_snapshot()
  /// order, so `random_pending(rng)` selects exactly the transaction
  /// `pending_snapshot()[rng.index(pending_count())]` would — without
  /// copying the whole pool (the per-tick re-gossip path used to pay
  /// O(pool) copies for one pick). The pointer is invalidated by the next
  /// mutating call.
  const eth::Transaction* random_pending(util::Rng& rng) const;

  /// Drops every buffered transaction (a node crash/restart: real clients
  /// come back with an empty pool). Base-fee state is chain-derived and
  /// survives.
  void clear();

  /// Snapshot of future (queued) transactions.
  std::vector<eth::Transaction> future_snapshot() const;

  /// Snapshot of everything buffered.
  std::vector<eth::Transaction> all_snapshot() const;

  const MempoolPolicy& policy() const { return policy_; }

 private:
  struct Entry {
    eth::Transaction tx;
    double added_at = 0.0;
    bool pending = false;
  };

  struct AccountQueue {
    /// Nonce-ascending flat queue. Accounts buffer a handful of entries at
    /// a time, so a sorted vector beats the former std::map on every nonce
    /// walk while keeping the same iteration order.
    std::vector<std::pair<eth::Nonce, Entry>> txs;
    size_t futures = 0;

    std::vector<std::pair<eth::Nonce, Entry>>::iterator lower_bound(eth::Nonce n) {
      return std::lower_bound(txs.begin(), txs.end(), n,
                              [](const auto& e, eth::Nonce v) { return e.first < v; });
    }
    std::vector<std::pair<eth::Nonce, Entry>>::iterator find(eth::Nonce n) {
      auto it = lower_bound(n);
      return (it != txs.end() && it->first == n) ? it : txs.end();
    }
    std::vector<std::pair<eth::Nonce, Entry>>::const_iterator find(eth::Nonce n) const {
      auto it = std::lower_bound(txs.begin(), txs.end(), n,
                                 [](const auto& e, eth::Nonce v) { return e.first < v; });
      return (it != txs.end() && it->first == n) ? it : txs.end();
    }
  };

  /// Everything the pool buffers, in one copy-on-write blob. Mutating
  /// methods reach it through st_.mutate() exactly once, after every
  /// read-only early-out has passed, so pools that a forked world never
  /// writes to keep sharing the base world's pages.
  struct State {
    // Struct-of-arrays account storage. slot_addr[i] == kNoAddress marks a
    // free slot (recycled LIFO via free_slots); slot_of maps an address to
    // its slot for O(1) lookup. Iteration happens in slot order.
    std::vector<eth::Address> slot_addr;
    std::vector<AccountQueue> slot_queue;
    std::vector<uint32_t> free_slots;
    std::unordered_map<eth::Address, uint32_t> slot_of;

    // (pool price, tx id), cheapest-first for eviction (see flat_index.h).
    FlatPriceIndex price_index;
    // Subset of price_index holding only future entries (truncation order).
    FlatPriceIndex future_index;
    std::unordered_map<uint64_t, std::pair<eth::Address, eth::Nonce>> by_id;
    std::unordered_map<eth::TxHash, uint64_t> by_hash;
    size_t size = 0;
    size_t pending_count = 0;
    // Cheap guards so maintain() skips full scans (and, post-fork, the
    // copy-on-write clone) when nothing can have expired / the base fee
    // has not moved.
    double min_added_at = 0.0;
    bool min_added_valid = false;
    eth::Wei last_pruned_base_fee = 0;
  };

 public:
  /// O(1) capture of the pool's buffered content. The snapshot shares the
  /// state blob; either side clones lazily on its next write.
  struct Snapshot {
    util::Cow<State> state;
    eth::Wei base_fee = 0;
  };
  Snapshot snapshot() const { return Snapshot{st_, base_fee_}; }
  void restore(const Snapshot& snap) {
    st_ = snap.state;
    base_fee_ = snap.base_fee;
  }

 private:
  /// add() minus the accounting: the instrumented wrapper stays off the
  /// profile when obs_ is null.
  AdmitResult add_impl(const eth::Transaction& tx, double now);
  void record_admit(const eth::Transaction& tx, const AdmitResult& result, double now);

  static const AccountQueue* account(const State& s, eth::Address sender);
  static AccountQueue* account(State& s, eth::Address sender);
  /// Finds or allocates the slot for `sender`.
  static AccountQueue& ensure_account(State& s, eth::Address sender);
  /// Returns `sender`'s slot to the free list (queue must be empty).
  static void release_account(State& s, eth::Address sender);

  /// Recomputes pending flags for one account; appends promotions to `out`
  /// when non-null. Maintains pending_count and the account future count.
  void reclassify(State& s, eth::Address sender, std::vector<eth::Transaction>* promoted);

  /// Removes one entry (must exist); does not reclassify.
  eth::Transaction remove_entry(State& s, eth::Address sender, eth::Nonce nonce);

  /// Chooses the eviction victim per policy; nullopt if no entry is cheaper
  /// than `incoming_price` (or, under futures-only eviction, no future is).
  std::optional<std::pair<eth::Address, eth::Nonce>> pick_victim(State& s,
                                                                 eth::Wei incoming_price,
                                                                 bool incoming_is_pending);

  /// Records an insertion time for the O(1) expiry guard.
  static void track_added_at(State& s, double now);

  // Flat-index tallies, passed per call (the indexes live inside the
  // copy-on-write state and hold no obs pointers of their own).
  obs::Counter* index_compactions() const {
    return obs_ != nullptr ? obs_->index_compactions : nullptr;
  }
  obs::Gauge* index_tombstone_peak() const {
    return obs_ != nullptr ? obs_->index_tombstone_peak : nullptr;
  }

  MempoolPolicy policy_;
  const eth::StateView* state_;
  const PoolObs* obs_ = nullptr;
  eth::Wei base_fee_ = 0;

  util::Cow<State> st_;
};

}  // namespace topo::mempool
