#pragma once

#include <algorithm>
#include <optional>
#include <unordered_map>
#include <vector>

#include "eth/account.h"
#include "eth/transaction.h"
#include "mempool/flat_index.h"
#include "mempool/policy.h"
#include "obs/metrics.h"
#include "util/rng.h"

namespace topo::mempool {

/// Interned observability handles shared by every pool of one world (the
/// registry aggregates across nodes; per-node metrics would explode
/// cardinality at network scale). All pointers may be null; a pool without
/// obs wiring pays only one branch per operation.
struct PoolObs {
  obs::Counter* admits_pending = nullptr;
  obs::Counter* admits_future = nullptr;
  obs::Counter* replacements = nullptr;
  obs::Counter* rejects = nullptr;
  obs::Counter* evictions = nullptr;            ///< all removals below, summed
  obs::Counter* evictions_price = nullptr;      ///< displaced by a pricier incomer
  obs::Counter* evictions_truncated = nullptr;  ///< future-subpool truncation
  obs::Counter* evictions_expired = nullptr;    ///< lifetime `e` exceeded
  obs::Counter* evictions_basefee = nullptr;    ///< EIP-1559 underpriced drop
  obs::Counter* drops_mined = nullptr;          ///< consumed by a block
  obs::Histogram* occupancy = nullptr;          ///< size/capacity at maintenance
  obs::Counter* index_compactions = nullptr;    ///< flat-index tombstone rebuilds
  obs::Gauge* index_tombstone_peak = nullptr;   ///< deepest tombstone heap (high-water only)
  obs::TraceRing* trace = nullptr;

  /// Interns the `mempool.*` handles in `reg` (idempotent).
  static PoolObs wire(obs::MetricsRegistry& reg);
};

/// Outcome of offering a transaction to the pool.
enum class AdmitCode {
  kAddedPending,                   ///< admitted, executable, will be propagated
  kAddedFuture,                    ///< admitted with a nonce gap, not propagated
  kReplaced,                       ///< replaced a same-sender same-nonce entry
  kRejectedDuplicate,              ///< hash already known
  kRejectedStaleNonce,             ///< nonce already confirmed on chain
  kRejectedUnderpricedReplacement, ///< bump below R
  kRejectedPoolFull,               ///< full and incoming price <= cheapest entry
  kRejectedEvictionForbidden,      ///< full, future incomer, pending count < P
  kRejectedFutureLimit,            ///< sender already has U futures
  kRejectedUnderBaseFee,           ///< EIP-1559 max fee below current base fee
};

const char* admit_code_name(AdmitCode code);

/// Result of Mempool::add. `evicted`/`replaced` let the owning node account
/// for what left the pool; `promoted` lists futures that this admission made
/// executable (the node must propagate those too, as real clients do).
struct AdmitResult {
  AdmitCode code = AdmitCode::kRejectedDuplicate;
  std::vector<eth::Transaction> evicted;
  std::optional<eth::Transaction> replaced;
  std::vector<eth::Transaction> promoted;

  /// True if the transaction now sits in the pool as pending (and should be
  /// propagated).
  bool admitted_pending() const {
    return code == AdmitCode::kAddedPending || code == AdmitCode::kReplaced;
  }
  bool admitted() const { return admitted_pending() || code == AdmitCode::kAddedFuture; }
};

/// Changes made by maintenance or a block commit.
struct PoolUpdate {
  std::vector<eth::Transaction> dropped;   ///< truncated / expired / mined / stale
  std::vector<eth::Transaction> promoted;  ///< future -> pending transitions
};

/// The parameterized unconfirmed-transaction buffer of paper §2/§5.1.
///
/// Semantics implemented:
///  - pending/future classification against a StateView (consecutive nonce
///    run from the confirmed next nonce);
///  - replacement: same (sender, nonce), price bump >= R;
///  - eviction: a full pool admits a higher-priced transaction by evicting
///    the policy's victim, gated by P (future incomers) and U (future count
///    per sender);
///  - deferred maintenance: future-subpool truncation to `future_cap`,
///    expiry after `e` seconds, EIP-1559 underpriced drops;
///  - block commits prune mined/stale entries and promote unblocked futures.
///
/// The pool never owns the StateView; callers guarantee it outlives the pool.
class Mempool {
 public:
  Mempool(MempoolPolicy policy, const eth::StateView* state);

  /// Offers a transaction at simulation time `now`.
  AdmitResult add(const eth::Transaction& tx, double now);

  /// Attaches shared observability handles (null detaches). The pointee
  /// must outlive the pool; typically owned by the p2p::Network.
  void set_obs(const PoolObs* o) {
    obs_ = o;
    price_index_.set_obs(o != nullptr ? o->index_compactions : nullptr,
                         o != nullptr ? o->index_tombstone_peak : nullptr);
    future_index_.set_obs(o != nullptr ? o->index_compactions : nullptr,
                          o != nullptr ? o->index_tombstone_peak : nullptr);
  }

  /// Deferred maintenance (Geth's reorg loop): truncates the future subpool,
  /// drops expired entries, and (EIP-1559) drops entries priced under the
  /// base fee.
  PoolUpdate maintain(double now);

  /// Reacts to a committed block: drops entries whose nonce the chain has
  /// consumed and promotes newly executable futures. The StateView must
  /// already reflect the block.
  PoolUpdate on_block();

  /// Updates the base fee used for EIP-1559 admission (no-op otherwise).
  void set_base_fee(eth::Wei base_fee) { base_fee_ = base_fee; }
  eth::Wei base_fee() const { return base_fee_; }

  bool contains(eth::TxHash h) const { return by_hash_.count(h) > 0; }
  const eth::Transaction* find(eth::Address sender, eth::Nonce nonce) const;
  const eth::Transaction* find_hash(eth::TxHash h) const;

  size_t size() const { return size_; }
  size_t pending_count() const { return pending_count_; }
  size_t future_count() const { return size_ - pending_count_; }
  size_t futures_of(eth::Address sender) const;
  bool full() const { return size_ >= policy_.capacity; }

  /// Cheapest pool price currently buffered (0 when empty).
  eth::Wei lowest_price() const;

  /// Median pool price of pending entries — the paper's Y estimator (§5.2.1).
  eth::Wei median_pending_price() const;

  /// Snapshot of pending transactions (miner candidates).
  std::vector<eth::Transaction> pending_snapshot() const;

  /// One uniformly random pending transaction, or nullptr when none are
  /// buffered. Draws a single index and walks to it in pending_snapshot()
  /// order, so `random_pending(rng)` selects exactly the transaction
  /// `pending_snapshot()[rng.index(pending_count())]` would — without
  /// copying the whole pool (the per-tick re-gossip path used to pay
  /// O(pool) copies for one pick). The pointer is invalidated by the next
  /// mutating call.
  const eth::Transaction* random_pending(util::Rng& rng) const;

  /// Drops every buffered transaction (a node crash/restart: real clients
  /// come back with an empty pool). Base-fee state is chain-derived and
  /// survives.
  void clear();

  /// Snapshot of future (queued) transactions.
  std::vector<eth::Transaction> future_snapshot() const;

  /// Snapshot of everything buffered.
  std::vector<eth::Transaction> all_snapshot() const;

  const MempoolPolicy& policy() const { return policy_; }

 private:
  struct Entry {
    eth::Transaction tx;
    double added_at = 0.0;
    bool pending = false;
  };

  /// add() minus the accounting: the instrumented wrapper stays off the
  /// profile when obs_ is null.
  AdmitResult add_impl(const eth::Transaction& tx, double now);
  void record_admit(const eth::Transaction& tx, const AdmitResult& result, double now);
  struct AccountQueue {
    /// Nonce-ascending flat queue. Accounts buffer a handful of entries at
    /// a time, so a sorted vector beats the former std::map on every nonce
    /// walk while keeping the same iteration order.
    std::vector<std::pair<eth::Nonce, Entry>> txs;
    size_t futures = 0;

    std::vector<std::pair<eth::Nonce, Entry>>::iterator lower_bound(eth::Nonce n) {
      return std::lower_bound(txs.begin(), txs.end(), n,
                              [](const auto& e, eth::Nonce v) { return e.first < v; });
    }
    std::vector<std::pair<eth::Nonce, Entry>>::iterator find(eth::Nonce n) {
      auto it = lower_bound(n);
      return (it != txs.end() && it->first == n) ? it : txs.end();
    }
    std::vector<std::pair<eth::Nonce, Entry>>::const_iterator find(eth::Nonce n) const {
      auto it = std::lower_bound(txs.begin(), txs.end(), n,
                                 [](const auto& e, eth::Nonce v) { return e.first < v; });
      return (it != txs.end() && it->first == n) ? it : txs.end();
    }
  };

  /// Recomputes pending flags for one account; appends promotions to `out`
  /// when non-null. Maintains pending_count_ and the account future count.
  void reclassify(eth::Address sender, std::vector<eth::Transaction>* promoted);

  /// Removes one entry (must exist); does not reclassify.
  eth::Transaction remove_entry(eth::Address sender, eth::Nonce nonce);

  /// Chooses the eviction victim per policy; nullopt if no entry is cheaper
  /// than `incoming_price` (or, under futures-only eviction, no future is).
  std::optional<std::pair<eth::Address, eth::Nonce>> pick_victim(eth::Wei incoming_price,
                                                                 bool incoming_is_pending) const;

  /// Records an insertion time for the O(1) expiry guard.
  void track_added_at(double now);

  MempoolPolicy policy_;
  const eth::StateView* state_;
  const PoolObs* obs_ = nullptr;
  eth::Wei base_fee_ = 0;

  std::unordered_map<eth::Address, AccountQueue> accounts_;
  // (pool price, tx id), cheapest-first for eviction. Flat sorted-vector
  // index (see flat_index.h): same min() as the former std::set, no node
  // allocation per admit.
  FlatPriceIndex price_index_;
  // Subset of price_index_ holding only future entries (truncation order).
  FlatPriceIndex future_index_;
  std::unordered_map<uint64_t, std::pair<eth::Address, eth::Nonce>> by_id_;
  std::unordered_map<eth::TxHash, uint64_t> by_hash_;
  size_t size_ = 0;
  size_t pending_count_ = 0;
  // Cheap guards so maintain() skips full scans when nothing can have
  // expired / the base fee has not moved.
  double min_added_at_ = 0.0;
  bool min_added_valid_ = false;
  eth::Wei last_pruned_base_fee_ = 0;
};

}  // namespace topo::mempool
