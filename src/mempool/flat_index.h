#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "eth/types.h"
#include "obs/metrics.h"

namespace topo::mempool {

/// Flat, allocation-light replacement for the node-based
/// std::set<std::pair<Wei, uint64_t>> price/future indexes.
///
/// The pool only ever asks three things of these indexes — insert a key,
/// erase a key, and read the current minimum (the eviction / truncation
/// victim) — so the structure is a flat binary min-heap with lazy deletion
/// rather than an ordered tree: `data_` holds every inserted key, `dead_`
/// holds erased keys that are still buried in `data_`, and equal heap tops
/// cancel pairwise when the minimum is read. Erasing the current minimum
/// (the common case: victims come from `min()`) pops directly. When
/// tombstones pile up past half the heap, both arrays are sorted and the
/// multiset difference rebuilt — an amortized O(log n) per operation, with
/// no per-node allocation or hashing anywhere.
///
/// Semantics match the std::set exactly where the pool uses it: `min()`
/// returns the least (price, id) pair currently live, ties on price broken
/// by ascending id. Keys are unique by id among *live* entries; a key
/// erased and later re-inserted is handled by multiset accounting (each
/// tombstone cancels exactly one buried copy).
///
/// The index holds no observability pointers: it lives inside the pool's
/// copy-on-write state layer (see Mempool), and a baked-in registry handle
/// would leak across forked worlds. Callers pass their tallies into the
/// mutating operations instead.
class FlatPriceIndex {
 public:
  using Key = std::pair<eth::Wei, uint64_t>;  ///< (pool price, tx id)

  bool empty() const { return live_ == 0; }
  size_t size() const { return live_; }

  /// Allocated capacity of the backing heap (live + buried entries). An
  /// eviction flood drives this far above `size()`; `erase`/compaction
  /// release it again once occupancy falls below a quarter of capacity —
  /// the regression the world-fork work guards against is a forked replica
  /// inheriting a flood-sized allocation it will never use.
  size_t heap_capacity() const { return data_.capacity(); }
  size_t tombstone_capacity() const { return dead_.capacity(); }

  void insert(Key key) {
    ++live_;
    data_.push_back(key);
    std::push_heap(data_.begin(), data_.end(), std::greater<>{});
  }

  /// Erases a live key. Precondition: `key` was inserted and not yet
  /// erased. Unlike the std::set::erase this replaced, erasing an absent
  /// key is NOT a no-op — it would underflow the live count and bury a
  /// tombstone with no matching copy, silently corrupting eviction order.
  /// Call sites must stay insert/erase-balanced per key; debug builds
  /// assert membership so an unbalanced caller fails loudly.
  ///
  /// `compactions`/`tombstone_peak` (both optional) receive the rebuild
  /// count and the deepest tombstone heap seen.
  void erase(Key key, obs::Counter* compactions = nullptr,
             obs::Gauge* tombstone_peak = nullptr) {
    assert(live_ > 0);
    assert(contains_live(key) && "FlatPriceIndex::erase: key not live");
    --live_;
    if (!data_.empty() && data_.front() == key) {
      pop_data();
      cancel_top();
      maybe_shrink();
      return;
    }
    dead_.push_back(key);
    std::push_heap(dead_.begin(), dead_.end(), std::greater<>{});
    if (tombstone_peak != nullptr) {
      tombstone_peak->update_max(static_cast<double>(dead_.size()));
    }
    if (dead_.size() > data_.size() / 2) compact(compactions);
  }

  /// Least live key; undefined when empty. Non-const on purpose: reading
  /// the minimum settles lazy cancellations (physical mutation), which must
  /// never happen through a copy-on-write handle that other worlds share.
  Key min() {
    assert(live_ > 0);
    cancel_top();
    return data_.front();
  }

  void clear() {
    data_.clear();
    data_.shrink_to_fit();
    dead_.clear();
    dead_.shrink_to_fit();
    live_ = 0;
  }

 private:
  /// Below this capacity a stale high-water allocation is noise; don't churn.
  static constexpr size_t kShrinkFloor = 64;

  /// Debug-only membership probe (O(n) scans; assert operand, so it never
  /// runs in release builds): `key` is live iff its copies in data_
  /// outnumber its tombstones in dead_.
  bool contains_live(const Key& key) const {
    const auto count = [&key](const std::vector<Key>& v) {
      return std::count(v.begin(), v.end(), key);
    };
    return count(data_) > count(dead_);
  }

  void pop_data() {
    std::pop_heap(data_.begin(), data_.end(), std::greater<>{});
    data_.pop_back();
  }

  /// Cancels tombstoned copies sitting at the top of the data heap so
  /// data_.front() is live. dead_ ⊆ data_ as multisets, so a non-empty
  /// dead_ implies a non-empty data_.
  void cancel_top() {
    while (!dead_.empty() && !data_.empty() && data_.front() == dead_.front()) {
      pop_data();
      std::pop_heap(dead_.begin(), dead_.end(), std::greater<>{});
      dead_.pop_back();
    }
  }

  /// Releases a stale high-water allocation once occupancy drops below a
  /// quarter of capacity. An eviction flood that drains through direct
  /// min-pops never triggers compact(), so the check runs on every shrink
  /// opportunity; the 4x hysteresis keeps the amortized cost O(1) per
  /// erase (capacity at least quarters between reallocations). A
  /// reallocated vector of a sorted/heaped range preserves element order,
  /// so the heap invariant survives.
  void maybe_shrink() {
    if (data_.capacity() > kShrinkFloor && data_.size() < data_.capacity() / 4) {
      data_.shrink_to_fit();
    }
    if (dead_.capacity() > kShrinkFloor && dead_.size() < dead_.capacity() / 4) {
      dead_.shrink_to_fit();
    }
  }

  /// Amortized rebuild: drop every tombstoned copy in one sorted sweep.
  void compact(obs::Counter* compactions) {
    if (compactions != nullptr) compactions->inc();
    std::sort(data_.begin(), data_.end());
    std::sort(dead_.begin(), dead_.end());
    std::vector<Key> keep;
    keep.reserve(live_);
    size_t d = 0;
    for (const Key& k : data_) {
      if (d < dead_.size() && dead_[d] == k) {
        ++d;
        continue;
      }
      keep.push_back(k);
    }
    assert(d == dead_.size());
    assert(keep.size() == live_);
    // A sorted ascending array already satisfies the min-heap property
    // (parent index < child index, values ascending), so no make_heap.
    data_ = std::move(keep);
    dead_.clear();
    maybe_shrink();
  }

  std::vector<Key> data_;  ///< min-heap of every inserted key
  std::vector<Key> dead_;  ///< min-heap of erased-but-buried keys
  size_t live_ = 0;
};

}  // namespace topo::mempool
