#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "eth/types.h"
#include "obs/metrics.h"

namespace topo::mempool {

/// Flat, allocation-light replacement for the node-based
/// std::set<std::pair<Wei, uint64_t>> price/future indexes.
///
/// The pool only ever asks three things of these indexes — insert a key,
/// erase a key, and read the current minimum (the eviction / truncation
/// victim) — so the structure is a flat binary min-heap with lazy deletion
/// rather than an ordered tree: `data_` holds every inserted key, `dead_`
/// holds erased keys that are still buried in `data_`, and equal heap tops
/// cancel pairwise when the minimum is read. Erasing the current minimum
/// (the common case: victims come from `min()`) pops directly. When
/// tombstones pile up past half the heap, both arrays are sorted and the
/// multiset difference rebuilt — an amortized O(log n) per operation, with
/// no per-node allocation or hashing anywhere.
///
/// Semantics match the std::set exactly where the pool uses it: `min()`
/// returns the least (price, id) pair currently live, ties on price broken
/// by ascending id. Keys are unique by id among *live* entries; a key
/// erased and later re-inserted is handled by multiset accounting (each
/// tombstone cancels exactly one buried copy).
class FlatPriceIndex {
 public:
  using Key = std::pair<eth::Wei, uint64_t>;  ///< (pool price, tx id)

  bool empty() const { return live_ == 0; }
  size_t size() const { return live_; }

  /// Attaches shared tombstone/compaction tallies (null detaches); the
  /// pointees must outlive the index. Shared across every index of a world
  /// (the registry aggregates), matching the PoolObs cardinality policy.
  void set_obs(obs::Counter* compactions, obs::Gauge* tombstone_peak) {
    compactions_ = compactions;
    tombstone_peak_ = tombstone_peak;
  }

  void insert(Key key) {
    ++live_;
    data_.push_back(key);
    std::push_heap(data_.begin(), data_.end(), std::greater<>{});
  }

  /// Erases a live key. Precondition: `key` was inserted and not yet
  /// erased. Unlike the std::set::erase this replaced, erasing an absent
  /// key is NOT a no-op — it would underflow the live count and bury a
  /// tombstone with no matching copy, silently corrupting eviction order.
  /// Call sites must stay insert/erase-balanced per key; debug builds
  /// assert membership so an unbalanced caller fails loudly.
  void erase(Key key) {
    assert(live_ > 0);
    assert(contains_live(key) && "FlatPriceIndex::erase: key not live");
    --live_;
    if (!data_.empty() && data_.front() == key) {
      pop_data();
      cancel_top();
      return;
    }
    dead_.push_back(key);
    std::push_heap(dead_.begin(), dead_.end(), std::greater<>{});
    if (tombstone_peak_ != nullptr) {
      tombstone_peak_->update_max(static_cast<double>(dead_.size()));
    }
    if (dead_.size() > data_.size() / 2) compact();
  }

  /// Least live key; undefined when empty.
  Key min() const {
    assert(live_ > 0);
    cancel_top();
    return data_.front();
  }

  void clear() {
    data_.clear();
    dead_.clear();
    live_ = 0;
  }

 private:
  /// Debug-only membership probe (O(n) scans; assert operand, so it never
  /// runs in release builds): `key` is live iff its copies in data_
  /// outnumber its tombstones in dead_.
  bool contains_live(const Key& key) const {
    const auto count = [&key](const std::vector<Key>& v) {
      return std::count(v.begin(), v.end(), key);
    };
    return count(data_) > count(dead_);
  }

  void pop_data() const {
    std::pop_heap(data_.begin(), data_.end(), std::greater<>{});
    data_.pop_back();
  }

  /// Cancels tombstoned copies sitting at the top of the data heap so
  /// data_.front() is live. dead_ ⊆ data_ as multisets, so a non-empty
  /// dead_ implies a non-empty data_.
  void cancel_top() const {
    while (!dead_.empty() && !data_.empty() && data_.front() == dead_.front()) {
      pop_data();
      std::pop_heap(dead_.begin(), dead_.end(), std::greater<>{});
      dead_.pop_back();
    }
  }

  /// Amortized rebuild: drop every tombstoned copy in one sorted sweep.
  void compact() {
    if (compactions_ != nullptr) compactions_->inc();
    std::sort(data_.begin(), data_.end());
    std::sort(dead_.begin(), dead_.end());
    std::vector<Key> keep;
    keep.reserve(live_);
    size_t d = 0;
    for (const Key& k : data_) {
      if (d < dead_.size() && dead_[d] == k) {
        ++d;
        continue;
      }
      keep.push_back(k);
    }
    assert(d == dead_.size());
    assert(keep.size() == live_);
    // A sorted ascending array already satisfies the min-heap property
    // (parent index < child index, values ascending), so no make_heap.
    data_ = std::move(keep);
    dead_.clear();
  }

  mutable std::vector<Key> data_;  ///< min-heap of every inserted key
  mutable std::vector<Key> dead_;  ///< min-heap of erased-but-buried keys
  size_t live_ = 0;
  obs::Counter* compactions_ = nullptr;
  obs::Gauge* tombstone_peak_ = nullptr;
};

}  // namespace topo::mempool
