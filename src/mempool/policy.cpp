#include "mempool/policy.h"

namespace topo::mempool {

bool MempoolPolicy::accepts_replacement(eth::Wei old_price, eth::Wei new_price) const {
  // new >= old * (10000 + bump) / 10000, computed without overflow.
  const unsigned __int128 lhs = static_cast<unsigned __int128>(new_price) * 10000;
  const unsigned __int128 rhs =
      static_cast<unsigned __int128>(old_price) * (10000 + replace_bump_bp);
  return lhs >= rhs;
}

eth::Wei MempoolPolicy::min_replacement_price(eth::Wei old_price) const {
  const unsigned __int128 num =
      static_cast<unsigned __int128>(old_price) * (10000 + replace_bump_bp);
  // Ceiling division.
  return static_cast<eth::Wei>((num + 9999) / 10000);
}

}  // namespace topo::mempool
