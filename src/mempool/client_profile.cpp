#include "mempool/client_profile.h"

#include <limits>

namespace topo::mempool {

namespace {

ClientProfile make_geth() {
  ClientProfile p;
  p.kind = ClientKind::kGeth;
  p.name = "Geth";
  p.mainnet_share = 0.8324;
  p.policy.replace_bump_bp = 1000;  // 10%
  p.policy.max_futures_per_account = 4096;
  p.policy.min_pending_for_eviction = 0;
  p.policy.capacity = 5120;      // 4096 pending + 1024 queued
  p.policy.future_cap = 1024;    // GlobalQueue
  p.supports_announcements = true;
  return p;
}

ClientProfile make_parity() {
  ClientProfile p;
  p.kind = ClientKind::kParity;
  p.name = "Parity";
  p.mainnet_share = 0.1457;
  p.policy.replace_bump_bp = 1250;  // 12.5%
  p.policy.max_futures_per_account = 81;
  p.policy.min_pending_for_eviction = 2000;
  p.policy.capacity = 8192;
  p.policy.future_cap = 1024;
  return p;
}

ClientProfile make_nethermind() {
  ClientProfile p;
  p.kind = ClientKind::kNethermind;
  p.name = "Nethermind";
  p.mainnet_share = 0.0153;
  p.policy.replace_bump_bp = 0;  // the flawed zero-bump setting (§5.1)
  p.policy.max_futures_per_account = 17;
  p.policy.min_pending_for_eviction = 0;
  p.policy.capacity = 2048;
  p.policy.future_cap = 1024;
  return p;
}

ClientProfile make_besu() {
  ClientProfile p;
  p.kind = ClientKind::kBesu;
  p.name = "Besu";
  p.mainnet_share = 0.0052;
  p.policy.replace_bump_bp = 1000;  // 10%
  p.policy.max_futures_per_account = std::numeric_limits<uint64_t>::max();
  p.policy.min_pending_for_eviction = 0;
  p.policy.capacity = 4096;
  p.policy.future_cap = 1024;
  return p;
}

ClientProfile make_aleth() {
  ClientProfile p;
  p.kind = ClientKind::kAleth;
  p.name = "Aleth";
  p.mainnet_share = 0.0;
  p.policy.replace_bump_bp = 0;  // flawed zero-bump
  p.policy.max_futures_per_account = 1;
  p.policy.min_pending_for_eviction = 0;
  p.policy.capacity = 2048;
  p.policy.future_cap = 512;
  return p;
}

}  // namespace

const ClientProfile& profile_for(ClientKind kind) {
  static const ClientProfile geth = make_geth();
  static const ClientProfile parity = make_parity();
  static const ClientProfile nethermind = make_nethermind();
  static const ClientProfile besu = make_besu();
  static const ClientProfile aleth = make_aleth();
  switch (kind) {
    case ClientKind::kGeth: return geth;
    case ClientKind::kParity: return parity;
    case ClientKind::kNethermind: return nethermind;
    case ClientKind::kBesu: return besu;
    case ClientKind::kAleth: return aleth;
  }
  return geth;
}

const std::string& client_name(ClientKind kind) { return profile_for(kind).name; }

std::string client_version_string(ClientKind kind) {
  switch (kind) {
    case ClientKind::kGeth: return "Geth/v1.10.3-stable/linux-amd64/go1.16";
    case ClientKind::kParity: return "OpenEthereum/v3.2.5/x86_64-linux";
    case ClientKind::kNethermind: return "Nethermind/v1.10.66/linux-x64/dotnet5";
    case ClientKind::kBesu: return "besu/v21.1.2/linux-x86_64/oracle-java-11";
    case ClientKind::kAleth: return "aleth/1.8.0/linux/gnu";
  }
  return "unknown";
}

}  // namespace topo::mempool
