#pragma once

#include <cstddef>
#include <cstdint>

#include "eth/types.h"

namespace topo::mempool {

/// Which entry a full mempool sacrifices to admit a higher-priced incoming
/// transaction. The paper's model (§5.1) evicts the globally lowest-priced
/// transaction; the futures-only variant is the ablation of DESIGN.md §5 —
/// a pool that shields pending transactions from future-driven eviction,
/// i.e. the natural countermeasure to DETER-style flooding, which also
/// defeats TopoShot's txC eviction.
enum class EvictionVictim {
  kLowestPriceGlobal,  ///< cheapest entry, pending or future (paper model)
  kFuturesFirst,       ///< future incomers may only evict other futures
};

/// The parameterized mempool model of paper Table 2, extended with the two
/// knobs the protocol implicitly relies on:
///  - `future_cap`: clients bound the future/queued sub-pool (Geth's
///    GlobalQueue = 1024 of the 5120 total). Deferred truncation of that
///    sub-pool is what leaves room for txB after TopoShot's future flood.
///  - `expiry_seconds`: unconfirmed transactions are dropped after `e`
///    (3 h in Geth), used by the non-interference window [t1, t2+e].
struct MempoolPolicy {
  /// R — minimal price bump to replace a same-sender same-nonce transaction,
  /// in basis points (Geth 10% -> 1000, Parity 12.5% -> 1250). A zero bump
  /// reproduces the Aleth/Nethermind flaw: an equal-priced transaction
  /// replaces (the DoS weakness reported in §5.1).
  uint32_t replace_bump_bp = 1000;

  /// U — max future transactions admitted per sender account.
  uint64_t max_futures_per_account = 4096;

  /// P — minimal number of pending transactions required before a *future*
  /// transaction may evict (Parity: 2000; Geth: 0).
  size_t min_pending_for_eviction = 0;

  /// L — total mempool capacity in transactions.
  size_t capacity = 5120;

  /// Bound on the future sub-pool, enforced lazily by maintain().
  size_t future_cap = 1024;

  /// e — unconfirmed transaction lifetime (seconds). 0 disables expiry.
  double expiry_seconds = 3.0 * 3600.0;

  /// Enables EIP-1559 handling (Appendix E): admission/eviction use max fee,
  /// and transactions whose max fee drops below the base fee are removed.
  bool eip1559 = false;

  EvictionVictim victim = EvictionVictim::kLowestPriceGlobal;

  /// Replacement acceptance: new_price >= old_price * (1 + R). Exact
  /// integer arithmetic; no floating point.
  bool accepts_replacement(eth::Wei old_price, eth::Wei new_price) const;

  /// The minimal price that replaces `old_price` under this policy.
  eth::Wei min_replacement_price(eth::Wei old_price) const;
};

}  // namespace topo::mempool
