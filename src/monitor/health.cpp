#include "monitor/health.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace topo::monitor {

namespace {

[[noreturn]] void bad_field(const char* doc, const std::string& field,
                            const char* want) {
  throw std::runtime_error(std::string(doc) + ": field '" + field + "' must be " +
                           want);
}

double require_number(const rpc::Json& j, const char* doc, const std::string& field) {
  const rpc::Json& v = j[field];
  if (!v.is_number()) bad_field(doc, field, "a number");
  return v.as_number();
}

uint64_t require_uint(const rpc::Json& j, const char* doc, const std::string& field) {
  const double d = require_number(j, doc, field);
  if (d < 0 || d != std::floor(d)) bad_field(doc, field, "a non-negative integer");
  return static_cast<uint64_t>(d);
}

std::string require_string(const rpc::Json& j, const char* doc,
                           const std::string& field) {
  const rpc::Json& v = j[field];
  if (!v.is_string()) bad_field(doc, field, "a string");
  return v.as_string();
}

void require_schema(const rpc::Json& j, const char* doc, const char* schema) {
  if (!j.is_object()) throw std::runtime_error(std::string(doc) + ": not an object");
  if (!j["schema"].is_string() || j["schema"].as_string() != schema)
    bad_field(doc, "schema", schema);
}

/// Deterministic number rendering for reason strings — the same integral
/// fast-path / %.17g policy as every other exported surface.
std::string num(double v) { return rpc::Json(v).dump(); }

/// Median of the predecessors' sim_seconds (everything but the latest
/// entry). `prior` is small (the ring holds tens of epochs), so a copy +
/// nth_element is fine.
double median_sim_seconds(const std::vector<EpochStats>& ring) {
  std::vector<double> prior;
  prior.reserve(ring.size() - 1);
  for (size_t i = 0; i + 1 < ring.size(); ++i) prior.push_back(ring[i].sim_seconds);
  const size_t mid = prior.size() / 2;
  std::nth_element(prior.begin(), prior.begin() + mid, prior.end());
  double m = prior[mid];
  if (prior.size() % 2 == 0) {
    const double lower = *std::max_element(prior.begin(), prior.begin() + mid);
    m = (m + lower) / 2.0;
  }
  return m;
}

}  // namespace

const char* health_state_name(HealthState s) {
  switch (s) {
    case HealthState::kOk: return "ok";
    case HealthState::kDegradedSlowEpoch: return "degraded:slow-epoch";
    case HealthState::kDegradedBudgetSaturated: return "degraded:budget-saturated";
    case HealthState::kStalled: return "stalled";
  }
  return "unknown";
}

bool health_state_from_name(const std::string& name, HealthState& out) {
  for (HealthState s : {HealthState::kOk, HealthState::kDegradedSlowEpoch,
                        HealthState::kDegradedBudgetSaturated, HealthState::kStalled}) {
    if (name == health_state_name(s)) {
      out = s;
      return true;
    }
  }
  return false;
}

HealthReport classify_health(std::vector<EpochStats> ring,
                             const HealthThresholds& t) {
  HealthReport r;
  r.epochs = std::move(ring);
  if (r.epochs.empty()) {
    r.state = HealthState::kStalled;
    r.reason = "no epochs published";
    return r;
  }
  const EpochStats& last = r.epochs.back();
  if (last.pairs_selected == 0 || last.events_drained == 0) {
    r.state = HealthState::kStalled;
    r.reason = "epoch " + num(static_cast<double>(last.epoch)) +
               " made no progress (" +
               num(static_cast<double>(last.pairs_selected)) + " pairs selected, " +
               num(static_cast<double>(last.events_drained)) + " events drained)";
    return r;
  }
  if (t.slow_epoch_seconds > 0.0 && last.sim_seconds > t.slow_epoch_seconds) {
    r.state = HealthState::kDegradedSlowEpoch;
    r.reason = "epoch " + num(static_cast<double>(last.epoch)) + " ran " +
               num(last.sim_seconds) + " sim-s, over the absolute cap of " +
               num(t.slow_epoch_seconds);
    return r;
  }
  if (t.slow_epoch_factor > 0.0 && r.epochs.size() > t.slow_epoch_min_history) {
    const double median = median_sim_seconds(r.epochs);
    if (median > 0.0 && last.sim_seconds > t.slow_epoch_factor * median) {
      r.state = HealthState::kDegradedSlowEpoch;
      r.reason = "epoch " + num(static_cast<double>(last.epoch)) + " ran " +
                 num(last.sim_seconds) + " sim-s, over " +
                 num(t.slow_epoch_factor) + "x the prior median of " + num(median);
      return r;
    }
  }
  if (t.saturation_epochs > 0 && r.epochs.size() >= t.saturation_epochs) {
    bool saturated = true;
    for (size_t i = r.epochs.size() - t.saturation_epochs;
         saturated && i < r.epochs.size(); ++i) {
      saturated = r.epochs[i].budget_utilization >= t.saturation_utilization;
    }
    if (saturated) {
      r.state = HealthState::kDegradedBudgetSaturated;
      r.reason = "forced demand filled the epoch budget for " +
                 num(static_cast<double>(t.saturation_epochs)) +
                 " consecutive epochs (latest utilization " +
                 num(last.budget_utilization) + ")";
      return r;
    }
  }
  r.state = HealthState::kOk;
  r.reason = "all signals within thresholds";
  return r;
}

rpc::Json health_to_json(const HealthReport& r) {
  rpc::JsonArray epochs;
  epochs.reserve(r.epochs.size());
  for (const EpochStats& s : r.epochs) {
    epochs.push_back(rpc::Json(rpc::JsonObject{
        {"epoch", rpc::Json(s.epoch)},
        {"sim_seconds", rpc::Json(s.sim_seconds)},
        {"events_drained", rpc::Json(s.events_drained)},
        {"pairs_selected", rpc::Json(s.pairs_selected)},
        {"pairs_reprobed", rpc::Json(s.pairs_reprobed)},
        {"flips", rpc::Json(s.flips)},
        {"budget_utilization", rpc::Json(s.budget_utilization)},
        {"mean_confidence", rpc::Json(s.mean_confidence)},
        {"detection_lag_epochs", rpc::Json(s.detection_lag_epochs)},
    }));
  }
  return rpc::Json(rpc::JsonObject{
      {"schema", rpc::Json(kHealthSchema)},
      {"state", rpc::Json(health_state_name(r.state))},
      {"reason", rpc::Json(r.reason)},
      {"epochs", rpc::Json(std::move(epochs))},
  });
}

HealthReport health_from_json(const rpc::Json& j) {
  static constexpr const char* doc = "health";
  require_schema(j, doc, kHealthSchema);
  HealthReport r;
  if (!health_state_from_name(require_string(j, doc, "state"), r.state))
    bad_field(doc, "state", "a health state name");
  r.reason = require_string(j, doc, "reason");
  const rpc::Json& epochs = j["epochs"];
  if (!epochs.is_array()) bad_field(doc, "epochs", "an array");
  r.epochs.reserve(epochs.as_array().size());
  for (const rpc::Json& e : epochs.as_array()) {
    if (!e.is_object()) bad_field(doc, "epochs", "an array of objects");
    EpochStats s;
    s.epoch = require_uint(e, doc, "epoch");
    s.sim_seconds = require_number(e, doc, "sim_seconds");
    s.events_drained = require_uint(e, doc, "events_drained");
    s.pairs_selected = require_uint(e, doc, "pairs_selected");
    s.pairs_reprobed = require_uint(e, doc, "pairs_reprobed");
    s.flips = require_uint(e, doc, "flips");
    s.budget_utilization = require_number(e, doc, "budget_utilization");
    s.mean_confidence = require_number(e, doc, "mean_confidence");
    s.detection_lag_epochs = require_number(e, doc, "detection_lag_epochs");
    r.epochs.push_back(s);
  }
  return r;
}

}  // namespace topo::monitor
