#pragma once

// Versioned link state for the topology-monitoring daemon (topo::monitor).
//
// A LinkTable is the monitor's working memory: one entry per candidate
// pair that has ever been measured, carrying the latest Verdict, the epoch
// it was last measured, the epoch its verdict last changed, and a
// confidence score that decays with age (half-life in epochs, see
// docs/MONITORING.md). At the end of every epoch the daemon freezes the
// table into an immutable TopologySnapshot; snapshots are the unit served
// over RPC (topo_getSnapshot / topo_getDiff / topo_getStatus) and the unit
// of the determinism contract — they carry no wall-clock or sim-time
// fields, so identical measurement outcomes serialize byte-identically.
//
// Pairs are canonical-undirected (u < v, target-index space): the TopoShot
// probe primitive decides "is there a link between u and v", which is
// symmetric, so a directed table would only duplicate every verdict.

#include <array>
#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "core/config.h"
#include "rpc/json.h"

namespace topo::monitor {

/// Lowercase wire name of a Verdict ("connected" / "negative" /
/// "inconclusive") — the snapshot JSON encoding.
const char* verdict_name(core::Verdict v);

/// Inverse of verdict_name; false on an unknown name.
bool verdict_from_name(const std::string& name, core::Verdict& out);

/// One tracked link in a published snapshot. `confidence` is the decayed
/// score *at the snapshot's epoch*: 1.0 when measured this epoch, halved
/// every `decay_half_life` epochs since, forced to 0.0 while a churn hint
/// marks the entry stale.
struct LinkEntry {
  size_t u = 0;  ///< canonical endpoint, u < v (target indices)
  size_t v = 0;
  core::Verdict verdict = core::Verdict::kInconclusive;
  double confidence = 0.0;
  uint64_t measured_epoch = 0;  ///< epoch of the latest measurement
  uint64_t changed_epoch = 0;   ///< epoch the verdict last changed (or first appeared)

  friend bool operator==(const LinkEntry&, const LinkEntry&) = default;
};

/// Immutable end-of-epoch publication. `version` is the read-API handle
/// (topo_getSnapshot / topo_getDiff address these); it equals `epoch`
/// because the daemon publishes exactly once per epoch, but RPC clients
/// should treat it as opaque. Entries are sorted by (u, v), so equal
/// measurement outcomes produce byte-identical JSON.
struct TopologySnapshot {
  uint64_t version = 0;
  uint64_t epoch = 0;
  size_t nodes = 0;
  size_t pairs_total = 0;        ///< n*(n-1)/2 candidate pairs
  uint64_t pairs_measured = 0;   ///< cumulative pair measurements, all epochs
  uint64_t changes_observed = 0; ///< cumulative verdict flips folded in
  std::vector<LinkEntry> links;  ///< every pair measured at least once, sorted

  size_t connected_count() const;
  size_t inconclusive_count() const;

  /// Entry for canonical pair (u, v); nullptr when never measured.
  const LinkEntry* find(size_t u, size_t v) const;

  friend bool operator==(const TopologySnapshot&, const TopologySnapshot&) = default;
};

/// One verdict transition between two snapshot versions.
struct VerdictChange {
  size_t u = 0;
  size_t v = 0;
  core::Verdict from = core::Verdict::kInconclusive;  ///< kInconclusive for new pairs
  core::Verdict to = core::Verdict::kInconclusive;

  friend bool operator==(const VerdictChange&, const VerdictChange&) = default;
};

/// Difference between two published versions (topo_getDiff). `added` /
/// `removed` track the connected link set (a pair newly measured as
/// connected counts as added); `changed` lists *every* verdict transition,
/// including flips through kInconclusive, so added/removed are the subsets
/// of `changed` that cross kConnected. All lists sorted by (u, v).
struct TopologyDiff {
  uint64_t from = 0;
  uint64_t to = 0;
  std::vector<std::pair<size_t, size_t>> added;
  std::vector<std::pair<size_t, size_t>> removed;
  std::vector<VerdictChange> changed;

  bool empty() const { return added.empty() && removed.empty() && changed.empty(); }

  friend bool operator==(const TopologyDiff&, const TopologyDiff&) = default;
};

/// Aggregate daemon state (topo_getStatus). A pure function of the latest
/// snapshot plus the version count, so it inherits the snapshot's
/// determinism contract byte for byte.
struct MonitorStatus {
  uint64_t epoch = 0;     ///< epochs completed
  uint64_t version = 0;   ///< latest published version
  uint64_t versions = 0;  ///< number of published versions
  size_t nodes = 0;
  size_t pairs_total = 0;
  size_t pairs_tracked = 0;  ///< measured at least once
  size_t links_connected = 0;
  size_t links_inconclusive = 0;
  double coverage = 0.0;  ///< pairs_tracked / pairs_total
  uint64_t pairs_measured = 0;
  uint64_t changes_observed = 0;
  /// Histogram of per-link confidence at the latest epoch: 10 uniform bins
  /// over [0, 1], last bin closed (confidence 1.0 lands in bin 9).
  std::array<uint64_t, 10> confidence_histogram{};
  // Ring-pressure telemetry (status-v2): the daemon's own obs rings, so an
  // RPC client can see undersized buffers without reading stderr. Filled by
  // TopologyMonitor::status(), zero from make_status alone.
  uint64_t trace_total_pushed = 0;  ///< obs.trace.total_pushed
  uint64_t trace_dropped = 0;       ///< obs.trace.dropped (ring overwrites)
  uint64_t log_dropped = 0;         ///< obs.log.dropped (event-log overwrites)

  friend bool operator==(const MonitorStatus&, const MonitorStatus&) = default;
};

/// Structural diff of two snapshots (any two versions, either order —
/// from/to are taken from the arguments).
TopologyDiff compute_diff(const TopologySnapshot& from, const TopologySnapshot& to);

/// Status derived from the latest snapshot (see MonitorStatus).
MonitorStatus make_status(const TopologySnapshot& latest, uint64_t versions);

// -- JSON codecs (docs/report-format.md) -------------------------------------
//
// Every *_to_json / *_from_json pair round-trips exactly: from_json(to_json(x))
// == x for all representable values (doubles serialize through the %.17g
// path, which parses back bit-identically). from_json is strict — a missing
// field, a wrong type, or an unknown verdict name throws std::runtime_error
// naming the offending field; extra fields are rejected nowhere (forward
// compatibility), but the schema version string must match.

inline constexpr const char* kSnapshotSchema = "toposhot-snapshot-v1";
inline constexpr const char* kDiffSchema = "toposhot-diff-v1";
inline constexpr const char* kStatusSchema = "toposhot-status-v2";

rpc::Json snapshot_to_json(const TopologySnapshot& s);
TopologySnapshot snapshot_from_json(const rpc::Json& j);

rpc::Json diff_to_json(const TopologyDiff& d);
TopologyDiff diff_from_json(const rpc::Json& j);

rpc::Json status_to_json(const MonitorStatus& s);
MonitorStatus status_from_json(const rpc::Json& j);

// -- working table ------------------------------------------------------------

/// Mutable epoch-to-epoch state behind the published snapshots. Owned and
/// mutated only by the daemon's measurement loop; RPC readers never touch
/// it (they read published snapshots).
class LinkTable {
 public:
  struct Entry {
    core::Verdict verdict = core::Verdict::kInconclusive;
    uint64_t measured_epoch = 0;
    uint64_t changed_epoch = 0;
    /// Churn-hint strength: how many of the pair's endpoints churned since
    /// the last measurement (capped at 2). Any hint forces confidence to 0;
    /// both-endpoint hints additionally outrank single-endpoint ones in the
    /// re-measurement priority, because a changed link always churns *both*
    /// of its endpoints and that candidate set is small.
    uint8_t hints = 0;
  };

  explicit LinkTable(size_t nodes) : nodes_(nodes) {}

  size_t nodes() const { return nodes_; }
  size_t pairs_total() const { return nodes_ < 2 ? 0 : nodes_ * (nodes_ - 1) / 2; }
  size_t tracked() const { return entries_.size(); }
  /// Entries currently carrying a churn hint of at least `min_strength`
  /// (confidence forced to 0 until re-measured). Strength 2 means both
  /// endpoints churned since the pair's last measurement — not necessarily
  /// in the same epoch, so the watchdog's per-epoch forced-demand count is
  /// computed from the epoch's own hint set instead; strength-1 entries
  /// are speculative fan-out (O(nodes) per churned peer), prioritized but
  /// not obligatory.
  size_t hinted(uint8_t min_strength = 1) const;

  /// Entry for canonical pair (u, v); nullptr when never measured.
  const Entry* find(size_t u, size_t v) const;

  /// Folds one fresh verdict in at `epoch`: updates measured_epoch, clears
  /// any hint, and bumps changed_epoch when the verdict flipped. Returns
  /// true on a flip (a change the monitor *observed*); first-ever verdicts
  /// for a pair are not flips.
  bool record(size_t u, size_t v, core::Verdict verdict, uint64_t epoch);

  /// Marks every pair incident to `node` stale (confidence 0 until
  /// re-measured) — the discovery-hint reaction to observed peer churn.
  /// Calling it for both endpoints of a pair within one hint round raises
  /// that pair's hint strength to 2 (front of the priority order). Only
  /// already-tracked pairs gain the flag; untracked pairs are already at
  /// confidence 0. Returns the number of entries newly hinted.
  size_t hint_node(size_t node);

  /// Decayed confidence of pair (u, v) as of `epoch`:
  ///   2^-((epoch - measured_epoch) / half_life)
  /// 0.0 when never measured or hinted. half_life <= 0 disables decay
  /// (measured pairs keep confidence 1.0 until hinted).
  double confidence(size_t u, size_t v, uint64_t epoch, double half_life) const;

  /// Freezes the table into a published snapshot at `epoch` (entries
  /// sorted, confidences evaluated at `epoch` with `half_life`).
  TopologySnapshot snapshot(uint64_t epoch, double half_life, uint64_t pairs_measured,
                            uint64_t changes_observed) const;

  /// All candidate pairs ordered by re-measurement priority: descending
  /// hint strength first (both-endpoint hints, then single), then
  /// ascending (confidence, measured_epoch, u, v) — stalest and
  /// least-known first. Never-measured and hinted pairs sort ahead of
  /// every decayed-but-positive confidence. The daemon takes the top
  /// `epoch_budget` of this order each epoch.
  std::vector<std::pair<size_t, size_t>> prioritized_pairs(uint64_t epoch,
                                                           double half_life) const;

 private:
  static uint64_t key(size_t u, size_t v) {
    return (static_cast<uint64_t>(u) << 32) | static_cast<uint64_t>(v);
  }

  size_t nodes_;
  // Ordered map: iteration order == canonical (u, v) order, which keeps
  // snapshot construction and pair prioritization allocation-light and
  // deterministic without a sort over all n^2/2 keys.
  std::map<uint64_t, Entry> entries_;
};

}  // namespace topo::monitor
