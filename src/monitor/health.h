#pragma once

// Per-epoch health accounting and the daemon watchdog (topo::monitor,
// docs/OBSERVABILITY.md).
//
// The monitor keeps a bounded ring of EpochStats — the per-epoch
// cost/latency ledger the paper's feasibility argument (§5–6) is scored
// on: sim-time duration, drained events, selection/budget pressure,
// verdict flips, confidence level, detection lag. classify_health is a
// pure function over that ring plus configurable thresholds; it returns
// one of four states, ordered by severity:
//
//   stalled                    the loop published nothing, or the latest
//                              epoch made no progress at all
//   degraded:slow-epoch        the latest epoch blew the absolute sim-time
//                              cap, or ran `slow_epoch_factor`x past the
//                              median of its predecessors
//   degraded:budget-saturated  forced demand (both-endpoint churn hints +
//                              never-measured pairs) has filled the whole
//                              epoch budget for `saturation_epochs`
//                              consecutive epochs — the daemon can no
//                              longer also rotate stale pairs
//   ok                         none of the above
//
// A HealthReport (state + reason + the ring, oldest first) is what
// `topo_getHealth` serves; like the snapshot/diff/status documents it has
// a strict round-tripping JSON codec. Durations are *sim*-time, so the
// report is deterministic across --threads widths and queue backends; it
// does depend on --shards (per-shard replica warm-up repeats work), like
// campaign traces do.

#include <cstdint>
#include <string>
#include <vector>

#include "rpc/json.h"

namespace topo::monitor {

/// One epoch's ledger entry.
struct EpochStats {
  uint64_t epoch = 0;
  double sim_seconds = 0.0;     ///< campaign makespan (critical path)
  uint64_t events_drained = 0;  ///< simulator events across the epoch's shards
  uint64_t pairs_selected = 0;  ///< pairs this epoch measured
  uint64_t pairs_reprobed = 0;  ///< selected pairs that were already tracked
  uint64_t flips = 0;           ///< verdict changes folded in
  /// Forced demand over budget, where demand counts pairs with *both*
  /// endpoints in this epoch's churn hints (the candidate set every changed
  /// link must be in) plus never-measured pairs. 1.0 means forced work
  /// alone fills the budget; above 1.0 the epoch could not even cover the
  /// forced set.
  double budget_utilization = 0.0;
  double mean_confidence = 0.0;  ///< over tracked links at publish time
  /// Mean staleness of flipped verdicts: epochs since the pair's previous
  /// measurement, averaged over this epoch's flips (0 when none flipped) —
  /// a lower bound on how long each detected change went unseen.
  double detection_lag_epochs = 0.0;

  friend bool operator==(const EpochStats&, const EpochStats&) = default;
};

enum class HealthState : uint8_t {
  kOk = 0,
  kDegradedSlowEpoch,
  kDegradedBudgetSaturated,
  kStalled,
};

/// Wire name: "ok" / "degraded:slow-epoch" / "degraded:budget-saturated" /
/// "stalled".
const char* health_state_name(HealthState s);

/// Inverse of health_state_name; false on an unknown name.
bool health_state_from_name(const std::string& name, HealthState& out);

/// Watchdog knobs. Defaults flag only the unambiguous cases; the absolute
/// slow-epoch cap is off (world sizes vary too much for one number) and
/// the relative cap needs a few epochs of history before it can fire.
struct HealthThresholds {
  /// Absolute sim-seconds cap per epoch; <= 0 disables.
  double slow_epoch_seconds = 0.0;
  /// Latest epoch slower than factor x the median of its predecessors ⇒
  /// degraded:slow-epoch; <= 0 disables.
  double slow_epoch_factor = 3.0;
  /// Predecessor epochs required before the factor rule may fire (keeps
  /// the bootstrap epoch from being judged against nothing).
  size_t slow_epoch_min_history = 3;
  /// budget_utilization at or above this marks an epoch saturated.
  double saturation_utilization = 1.0;
  /// Consecutive saturated epochs ⇒ degraded:budget-saturated.
  size_t saturation_epochs = 2;

  friend bool operator==(const HealthThresholds&, const HealthThresholds&) = default;
};

/// What `topo_getHealth` serves: the verdict plus the evidence.
struct HealthReport {
  HealthState state = HealthState::kStalled;
  std::string reason;              ///< one-line justification of `state`
  std::vector<EpochStats> epochs;  ///< the stats ring, oldest first

  friend bool operator==(const HealthReport&, const HealthReport&) = default;
};

/// Classifies the stats ring (oldest first). Pure and deterministic: equal
/// rings and thresholds produce equal reports, reason string included. The
/// ring is taken by value and returned inside the report.
HealthReport classify_health(std::vector<EpochStats> ring,
                             const HealthThresholds& t);

// -- JSON codec (docs/report-format.md) --------------------------------------
//
// Same contract as the snapshot/diff/status codecs: health_from_json(
// health_to_json(r)) == r, strict field checking, schema string must match.

inline constexpr const char* kHealthSchema = "toposhot-health-v1";

rpc::Json health_to_json(const HealthReport& r);
HealthReport health_from_json(const rpc::Json& j);

}  // namespace topo::monitor
