#pragma once

// Continuous topology monitoring (topo::monitor) — ROADMAP item 3.
//
// A one-shot TopoShot campaign answers "what is the topology right now";
// the TopologyMonitor answers "what is the topology *over time*" against a
// ground truth that keeps drifting. It runs discrete epochs. Epoch 0
// bootstraps with the full §5.3.2 schedule (the one-shot product); every
// later epoch (1) drifts the ground truth with seeded link churn
// (fault::drift_topology), (2) folds the churn's *node-level* discovery
// hints into the link table (the monitor learns which peers churned, as a
// real deployment would from peer-list discovery — never which links),
// (3) re-measures only the `epoch_budget` stalest / least-confident pairs,
// chosen by a priority order over decayed confidence (LinkTable::
// prioritized_pairs), via one sharded incremental campaign
// (exec::run_sharded_campaign with CampaignOptions::pairs), and (4)
// publishes an immutable TopologySnapshot. Published snapshots serve the
// rpc::MonitorRpcServer read API without ever blocking the measurement
// loop.
//
// Determinism contract (tests/test_determinism.cpp, MonitorGolden*):
// snapshots, diffs, and status carry no sim-time or wall-clock fields, so
// a scripted run's artifacts are byte-identical at any --threads width and
// on either event-queue backend; the monitor's own metrics registry (and
// therefore the topo_getMetrics Prometheus exposition) keeps only
// shard-invariant `monitor.*` / `obs.*` series. The telemetry plane added
// for the live daemon — the EpochStats ring behind topo_getHealth and the
// structured event log — stamps everything with *sim* time, so it too is
// byte-identical across --threads widths and backends; like trace spans
// (one kEpoch span per epoch) it does depend on --shards, because shard
// replicas repeat warm-up work and that moves sim-time durations and
// event counts.

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include <string>

#include "core/config.h"
#include "core/strategy.h"
#include "core/toposhot.h"
#include "exec/campaign.h"
#include "fault/fault.h"
#include "graph/graph.h"
#include "monitor/health.h"
#include "monitor/link_table.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace topo::monitor {

/// Epoch-loop knobs. Campaign-level options (group_k, strategy, threads,
/// shards, traffic churn, fault plan) are forwarded into every epoch's
/// exec::run_sharded_campaign unchanged.
struct MonitorOptions {
  /// Pairs re-measured per post-bootstrap epoch. 0 = auto: max(16, 15% of
  /// all pairs) — comfortably under the 20%-per-epoch re-probe ceiling the
  /// acceptance gate holds the daemon to, clamped to the pair count.
  size_t epoch_budget = 0;

  /// Expected ground-truth link changes injected per epoch (the fractional
  /// part is a Bernoulli draw from the epoch's drift stream). 0 freezes the
  /// topology.
  double churn_per_epoch = 2.0;

  /// Confidence half-life in epochs: a verdict measured h epochs ago keeps
  /// 2^-(age/h) confidence. <= 0 disables decay (only churn hints force
  /// re-measurement).
  double decay_half_life = 4.0;

  /// Epoch 0 measures the full §5.3.2 schedule over all pairs instead of a
  /// budgeted subset — the warm-start every later epoch refines.
  bool bootstrap_full = true;

  /// Record one obs::SpanKind::kEpoch span per epoch into the monitor's
  /// tracer (sim-time clock = cumulative campaign makespans).
  bool collect_spans = false;

  /// Watchdog thresholds over the EpochStats ring (see monitor/health.h).
  HealthThresholds health;

  /// EpochStats ring depth — how many recent epochs topo_getHealth serves.
  size_t stats_capacity = 32;

  /// Event-log ring depth (obs::EventLog; overwrites count as dropped).
  size_t log_capacity = obs::EventLog::kDefaultCapacity;

  /// Warn in the event log when a campaign's payload-arena peak
  /// (`net.arena_peak`) exceeds this many slots; 0 disables.
  double arena_warn_peak = 0.0;

  // -- forwarded into each epoch's CampaignOptions ---------------------------
  size_t group_k = 3;
  core::StrategyKind strategy = core::StrategyKind::kToposhot;
  size_t threads = 1;
  size_t shards = 0;
  double traffic_churn_rate = 0.0;  ///< organic traffic + mining per replica
  fault::FaultPlan fault_plan;
};

/// One ground-truth change the drift process injected, stamped with the
/// epoch whose measurements could first see it. Ground truth — kept for
/// evaluation (evaluate_tracking) only; the monitor's measurement path
/// never reads it.
struct InjectedChange {
  uint64_t epoch = 0;
  fault::LinkChange change;

  friend bool operator==(const InjectedChange&, const InjectedChange&) = default;
};

/// Detection scorecard versus the injected ground truth.
struct TrackingEvaluation {
  size_t scoreable = 0;   ///< changes with a full scoring window
  size_t detected = 0;    ///< reflected in some snapshot within the window
  size_t superseded = 0;  ///< overwritten by a later change before scoring
  size_t pending = 0;     ///< window extends past the last published epoch
  double mean_latency_epochs = 0.0;  ///< over detected changes

  double detection_rate() const {
    return scoreable == 0 ? 1.0
                          : static_cast<double>(detected) /
                                static_cast<double>(scoreable);
  }
};

/// The daemon core. Single-writer: run_epoch()/run() belong to one thread
/// (the measurement loop); the versioned read API (snapshot / latest /
/// diff / status / versions) is safe to call concurrently from any number
/// of reader threads and never blocks on a running epoch beyond a brief
/// pointer copy. Evaluation accessors (truth, injected_changes, metrics,
/// tracer) are writer-thread-only.
class TopologyMonitor {
 public:
  /// `truth` is the live ground-truth topology (the monitor drifts its own
  /// copy); `world` seeds and shapes every epoch's replicas (world.seed is
  /// the single seed of the whole run — drift streams and per-epoch world
  /// seeds derive from it); `cfg` is the probe configuration
  /// (collect_diagnostics is forced on — the monitor needs per-pair causes
  /// to reconstruct verdicts).
  TopologyMonitor(graph::Graph truth, core::ScenarioOptions world,
                  core::MeasureConfig cfg, MonitorOptions opt);

  struct EpochResult {
    uint64_t epoch = 0;
    size_t pairs_selected = 0;    ///< pairs this epoch measured
    size_t changes_injected = 0;  ///< ground-truth drift applied
    size_t hints = 0;             ///< table entries marked stale by node hints
    size_t flips = 0;             ///< verdict changes observed
    double sim_seconds = 0.0;     ///< campaign makespan (critical path)
    uint64_t trace_dropped = 0;   ///< campaign trace-ring overwrites this epoch
    std::shared_ptr<const TopologySnapshot> snapshot;
  };

  /// Runs one epoch (drift → hint → select → measure → fold → publish) and
  /// returns its summary, including the published snapshot.
  EpochResult run_epoch();

  /// Runs `epochs` epochs back to back.
  void run(uint64_t epochs);

  size_t nodes() const { return table_.nodes(); }
  size_t pairs_total() const { return table_.pairs_total(); }
  uint64_t epochs_run() const { return epochs_run_; }

  /// Budget actually applied to post-bootstrap epochs (resolves the 0 =
  /// auto rule, clamped to pairs_total).
  size_t effective_epoch_budget() const;

  // -- versioned read API (thread-safe) --------------------------------------

  /// Published snapshot for `version`; nullptr when unknown. Versions are
  /// dense: 0 .. versions()-1.
  std::shared_ptr<const TopologySnapshot> snapshot(uint64_t version) const;
  std::shared_ptr<const TopologySnapshot> latest() const;
  uint64_t versions() const;

  /// Structural diff between two published versions; nullopt when either
  /// is unknown.
  std::optional<TopologyDiff> diff(uint64_t v1, uint64_t v2) const;

  /// Aggregate state. Before the first epoch, a zeroed status carrying
  /// only the topology dimensions. Always carries the daemon's own
  /// ring-pressure telemetry (trace_total_pushed / trace_dropped /
  /// log_dropped — status-v2).
  MonitorStatus status() const;

  /// Latest watchdog verdict over the EpochStats ring, published at the end
  /// of every epoch (before the first: `stalled`, empty ring). Never null.
  std::shared_ptr<const HealthReport> health() const;

  /// Latest Prometheus text exposition of the monitor's registry, published
  /// at the end of every epoch (empty string before the first). Never null.
  /// Like the registry itself it holds only shard-invariant series, so the
  /// bytes are identical across --threads widths and queue backends.
  std::shared_ptr<const std::string> metrics_exposition() const;

  // -- evaluation / observability (writer thread only) -----------------------

  const graph::Graph& truth() const { return truth_; }
  const std::vector<InjectedChange>& injected_changes() const { return changes_log_; }
  obs::MetricsRegistry& metrics() { return metrics_; }
  const obs::MetricsRegistry& metrics() const { return metrics_; }
  const obs::SpanTracer& tracer() const { return tracer_; }

  /// Structured event log (epoch lifecycle, budget clamps, churn hints,
  /// ring/arena pressure, RPC errors). Unlike the other observability
  /// accessors it is internally synchronized, so the RPC server may append
  /// error events from reader threads while the epoch loop writes.
  obs::EventLog& event_log() const { return log_; }

 private:
  std::vector<std::pair<size_t, size_t>> select_pairs(uint64_t epoch) const;

  graph::Graph truth_;
  core::ScenarioOptions world_;
  core::MeasureConfig cfg_;
  MonitorOptions opt_;

  LinkTable table_;
  uint64_t epochs_run_ = 0;
  uint64_t pairs_measured_ = 0;
  uint64_t changes_observed_ = 0;
  double sim_seconds_total_ = 0.0;
  std::vector<InjectedChange> changes_log_;

  obs::MetricsRegistry metrics_;
  obs::SpanTracer tracer_;
  mutable obs::EventLog log_;
  std::vector<EpochStats> stats_;  // bounded ring, oldest first
  HealthState last_health_ = HealthState::kStalled;
  bool budget_clamp_logged_ = false;

  mutable std::mutex versions_mutex_;
  std::vector<std::shared_ptr<const TopologySnapshot>> versions_;
  std::shared_ptr<const HealthReport> health_;
  std::shared_ptr<const std::string> exposition_;
};

/// Scores the monitor's snapshots against its injected ground-truth log: a
/// change at epoch e is *detected* when some published version in
/// [e, e + within - 1] reports the pair's verdict agreeing with the change
/// (added → connected, removed → not connected). Changes overwritten by
/// later drift inside the window are `superseded`; changes whose window
/// runs past the last published epoch are `pending`; neither counts
/// against the detection rate.
TrackingEvaluation evaluate_tracking(const TopologyMonitor& m, uint64_t within);

}  // namespace topo::monitor
