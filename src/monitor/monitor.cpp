#include "monitor/monitor.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <utility>

#include "obs/prometheus.h"
#include "util/rng.h"

namespace topo::monitor {

namespace {
/// Stream tags separating the monitor's seed consumers: every epoch's
/// drift RNG and world seed derive from (world.seed, tag, epoch), so no
/// epoch shares randomness with another or with anything inside the
/// campaign (which derives its own streams from the world seed it is
/// handed).
constexpr uint64_t kDriftStream = 0xD81F;
constexpr uint64_t kWorldStream = 0xE70C;

uint64_t epoch_seed(uint64_t base, uint64_t stream, uint64_t epoch) {
  return util::derive_stream_seed(util::derive_stream_seed(base, stream), epoch);
}

/// Merged-campaign gauge lookup (sums across shards in the merge).
double campaign_gauge(const obs::MetricsSnapshot& m, const char* name) {
  const auto it = m.gauges.find(name);
  return it == m.gauges.end() ? 0.0 : it->second;
}
}  // namespace

TopologyMonitor::TopologyMonitor(graph::Graph truth, core::ScenarioOptions world,
                                 core::MeasureConfig cfg, MonitorOptions opt)
    : truth_(std::move(truth)),
      world_(world),
      cfg_(core::MeasureConfig::Builder(cfg).collect_diagnostics(true).build()),
      opt_(std::move(opt)),
      table_(truth_.num_nodes()),
      log_(opt_.log_capacity) {
  // Publish the pre-run telemetry so readers never see null: an empty ring
  // classifies as stalled, and the registry exposes as an empty document.
  health_ = std::make_shared<const HealthReport>(classify_health({}, opt_.health));
  exposition_ = std::make_shared<const std::string>(obs::expose_prometheus(metrics_));
}

size_t TopologyMonitor::effective_epoch_budget() const {
  const size_t total = table_.pairs_total();
  size_t budget = opt_.epoch_budget != 0
                      ? opt_.epoch_budget
                      : std::max<size_t>(16, total * 3 / 20);
  return std::min(budget, total);
}

std::vector<std::pair<size_t, size_t>> TopologyMonitor::select_pairs(
    uint64_t epoch) const {
  if (epoch == 0 && opt_.bootstrap_full) {
    std::vector<std::pair<size_t, size_t>> all;
    all.reserve(table_.pairs_total());
    for (size_t u = 0; u + 1 < table_.nodes(); ++u)
      for (size_t v = u + 1; v < table_.nodes(); ++v) all.emplace_back(u, v);
    return all;
  }
  std::vector<std::pair<size_t, size_t>> pri =
      table_.prioritized_pairs(epoch, opt_.decay_half_life);
  const size_t budget = effective_epoch_budget();
  if (pri.size() > budget) pri.resize(budget);
  return pri;
}

TopologyMonitor::EpochResult TopologyMonitor::run_epoch() {
  const uint64_t epoch = epochs_run_;
  EpochResult res;
  res.epoch = epoch;

  // Events logged mid-epoch stamp with the epoch's *start* time; the
  // summary and health events at the bottom re-stamp with its end.
  log_.set_clock(sim_seconds_total_);
  log_.log(util::LogLevel::kDebug, "monitor", "epoch-start",
           {{"epoch", rpc::Json(epoch)}});

  // (1) Drift the ground truth. Epoch 0 measures the world as handed in.
  std::set<size_t> touched;  // nodes the discovery hints named this epoch
  if (epoch > 0 && opt_.churn_per_epoch > 0.0) {
    util::Rng drift_rng(epoch_seed(world_.seed, kDriftStream, epoch));
    size_t n_changes = static_cast<size_t>(std::floor(opt_.churn_per_epoch));
    const double frac = opt_.churn_per_epoch - std::floor(opt_.churn_per_epoch);
    if (frac > 0.0 && drift_rng.chance(frac)) ++n_changes;
    const std::vector<fault::LinkChange> applied =
        fault::drift_topology(truth_, n_changes, drift_rng);
    res.changes_injected = applied.size();
    // (2) Discovery hints: the monitor is told *which nodes* churned (the
    // peer-list signal a real deployment observes), never which links —
    // it must localize the change itself by re-measuring incident pairs.
    for (const fault::LinkChange& ch : applied) {
      changes_log_.push_back({epoch, ch});
      touched.insert(static_cast<size_t>(ch.u));
      touched.insert(static_cast<size_t>(ch.v));
    }
    for (size_t node : touched) res.hints += table_.hint_node(node);
    if (res.changes_injected > 0) {
      log_.log(util::LogLevel::kInfo, "monitor", "churn-hints",
               {{"epoch", rpc::Json(epoch)},
                {"changes", rpc::Json(static_cast<uint64_t>(res.changes_injected))},
                {"hinted", rpc::Json(static_cast<uint64_t>(res.hints))}});
    }
  }

  // Forced re-measurement demand entering selection: tracked pairs with
  // *both* endpoints in this epoch's churn hints (the candidate set every
  // changed link must be in — single-endpoint incidence is speculative
  // fan-out) plus never-measured pairs. Against the budget this is the
  // watchdog's saturation signal — when it fills the budget, staleness
  // rotation stops.
  size_t strong_hints = 0;
  for (auto a = touched.begin(); a != touched.end(); ++a) {
    for (auto b = std::next(a); b != touched.end(); ++b) {
      if (table_.find(*a, *b) != nullptr) ++strong_hints;
    }
  }
  const size_t demand =
      strong_hints + (table_.pairs_total() - table_.tracked());

  if (!budget_clamp_logged_ && table_.pairs_total() > 0 &&
      opt_.epoch_budget > table_.pairs_total()) {
    budget_clamp_logged_ = true;
    log_.log(util::LogLevel::kWarn, "monitor", "budget-clamped",
             {{"requested", rpc::Json(static_cast<uint64_t>(opt_.epoch_budget))},
              {"clamped", rpc::Json(static_cast<uint64_t>(effective_epoch_budget()))}});
  }

  // (3) Select and measure. The bootstrap epoch runs the full §5.3.2
  // schedule (CampaignOptions::pairs empty); incremental epochs batch
  // exactly the prioritized subset. An empty selection (degenerate worlds
  // with no candidate pairs) skips the campaign outright — CampaignOptions
  // treats an empty pair list as "the full schedule", which is not what an
  // empty selection means.
  const std::vector<std::pair<size_t, size_t>> selected = select_pairs(epoch);
  res.pairs_selected = selected.size();

  exec::CampaignResult result;
  if (!selected.empty()) {
    exec::CampaignOptions copt;
    copt.group_k = opt_.group_k;
    copt.strategy = opt_.strategy;
    copt.threads = opt_.threads;
    copt.shards = opt_.shards;
    copt.churn_rate = opt_.traffic_churn_rate;
    copt.fault_plan = opt_.fault_plan;
    if (!(epoch == 0 && opt_.bootstrap_full)) copt.pairs = selected;

    core::ScenarioOptions wopt = world_;
    wopt.seed = epoch_seed(world_.seed, kWorldStream, epoch);
    result = exec::run_sharded_campaign(truth_, wopt, cfg_, copt);
  }
  res.sim_seconds = result.makespan_sim_seconds;

  // (4) Fold verdicts. The campaign's merged report spells out connected
  // pairs (measured graph) and still-inconclusive pairs (diagnostics
  // annex, forced on in the ctor); everything else it tested is a clean
  // negative.
  std::set<std::pair<size_t, size_t>> inconclusive;
  if (result.report.diagnostics.has_value()) {
    for (const core::PairDiagnostic& d : result.report.diagnostics->inconclusive)
      inconclusive.emplace(std::min(d.u, d.v), std::max(d.u, d.v));
  }
  size_t reprobed = 0;
  uint64_t lag_sum = 0;
  for (const auto& [u, v] : selected) {
    core::Verdict verdict = core::Verdict::kNegative;
    if (result.report.measured.has_edge(static_cast<graph::NodeId>(u),
                                        static_cast<graph::NodeId>(v))) {
      verdict = core::Verdict::kConnected;
    } else if (inconclusive.count({std::min(u, v), std::max(u, v)}) != 0) {
      verdict = core::Verdict::kInconclusive;
    }
    const LinkTable::Entry* prev = table_.find(u, v);
    if (prev != nullptr) ++reprobed;
    const uint64_t prev_measured = prev == nullptr ? epoch : prev->measured_epoch;
    if (table_.record(u, v, verdict, epoch)) {
      ++res.flips;
      lag_sum += epoch - prev_measured;  // flips always have a prior entry
    }
  }
  pairs_measured_ += selected.size();
  changes_observed_ += res.flips;

  // (5) Publish. The snapshot carries no sim-time fields, so it is
  // byte-identical wherever the measurement outcomes are.
  auto snap = std::make_shared<const TopologySnapshot>(table_.snapshot(
      epoch, opt_.decay_half_life, pairs_measured_, changes_observed_));
  res.snapshot = snap;

  const size_t budget =
      epoch == 0 && opt_.bootstrap_full ? selected.size() : effective_epoch_budget();
  const double utilization =
      budget == 0 ? 0.0 : static_cast<double>(demand) / static_cast<double>(budget);
  const uint64_t events_drained =
      static_cast<uint64_t>(campaign_gauge(result.metrics, "sim.events_processed"));
  res.trace_dropped =
      static_cast<uint64_t>(campaign_gauge(result.metrics, "obs.trace.dropped"));
  double conf_sum = 0.0;
  for (const LinkEntry& le : snap->links) conf_sum += le.confidence;
  const double mean_conf =
      snap->links.empty() ? 0.0
                          : conf_sum / static_cast<double>(snap->links.size());

  // Observability: only shard-invariant series go into the monitor's own
  // registry (the determinism golden byte-compares its export — and now
  // its Prometheus exposition — across --shards); sim-time durations and
  // event counts are shards-dependent and live in the EpochStats ring.
  metrics_.counter("monitor.epochs").inc();
  metrics_.counter("monitor.pairs_measured").inc(selected.size());
  metrics_.counter("monitor.pairs_reprobed").inc(reprobed);
  metrics_.counter("monitor.changes_detected").inc(res.flips);
  metrics_.counter("monitor.hints").inc(res.hints);
  metrics_.counter("monitor.drift.injected").inc(res.changes_injected);
  metrics_.gauge("monitor.version").set(static_cast<double>(epoch));
  metrics_.gauge("monitor.coverage")
      .set(snap->pairs_total == 0 ? 0.0
                                  : static_cast<double>(snap->links.size()) /
                                        static_cast<double>(snap->pairs_total));
  metrics_.gauge("monitor.links_connected")
      .set(static_cast<double>(snap->connected_count()));
  metrics_.gauge("monitor.confidence.mean").set(mean_conf);
  metrics_.histogram("monitor.epoch.utilization", obs::fraction_bounds())
      .observe(utilization);
  metrics_.gauge("obs.trace.total_pushed")
      .set(static_cast<double>(metrics_.trace().total_pushed()));
  metrics_.gauge("obs.trace.dropped")
      .set(static_cast<double>(metrics_.trace().dropped()));
  metrics_.gauge("obs.log.dropped").set(static_cast<double>(log_.dropped()));

  EpochStats st;
  st.epoch = epoch;
  st.sim_seconds = result.makespan_sim_seconds;
  st.events_drained = events_drained;
  st.pairs_selected = selected.size();
  st.pairs_reprobed = reprobed;
  st.flips = res.flips;
  st.budget_utilization = utilization;
  st.mean_confidence = mean_conf;
  st.detection_lag_epochs =
      res.flips == 0 ? 0.0
                     : static_cast<double>(lag_sum) / static_cast<double>(res.flips);
  stats_.push_back(st);
  const size_t cap = std::max<size_t>(1, opt_.stats_capacity);
  if (stats_.size() > cap) stats_.erase(stats_.begin(), stats_.end() - cap);

  // End-of-epoch events stamp with the epoch's end time.
  log_.set_clock(sim_seconds_total_ + result.makespan_sim_seconds);
  if (res.trace_dropped > 0) {
    log_.log(util::LogLevel::kWarn, "obs", "trace-ring-dropped",
             {{"epoch", rpc::Json(epoch)},
              {"dropped", rpc::Json(res.trace_dropped)},
              {"pushed", rpc::Json(static_cast<uint64_t>(campaign_gauge(
                             result.metrics, "obs.trace.total_pushed")))}});
  }
  if (opt_.arena_warn_peak > 0.0) {
    const auto peak_it = result.metrics.gauge_maxes.find("net.arena_peak");
    const double peak = peak_it == result.metrics.gauge_maxes.end() ? 0.0 : peak_it->second;
    if (peak > opt_.arena_warn_peak) {
      log_.log(util::LogLevel::kWarn, "p2p", "arena-pressure",
               {{"epoch", rpc::Json(epoch)},
                {"peak", rpc::Json(peak)},
                {"threshold", rpc::Json(opt_.arena_warn_peak)}});
    }
  }
  if (!(epoch == 0 && opt_.bootstrap_full) && !selected.empty() &&
      utilization >= opt_.health.saturation_utilization) {
    log_.log(util::LogLevel::kWarn, "monitor", "budget-saturated",
             {{"epoch", rpc::Json(epoch)},
              {"utilization", rpc::Json(utilization)}});
  }

  auto report =
      std::make_shared<const HealthReport>(classify_health(stats_, opt_.health));
  if (report->state != last_health_) {
    log_.log(report->state == HealthState::kOk ? util::LogLevel::kInfo
                                               : util::LogLevel::kWarn,
             "monitor", "health-changed",
             {{"epoch", rpc::Json(epoch)},
              {"from", rpc::Json(health_state_name(last_health_))},
              {"to", rpc::Json(health_state_name(report->state))},
              {"reason", rpc::Json(report->reason)}});
    last_health_ = report->state;
  }
  log_.log(util::LogLevel::kInfo, "monitor", "epoch",
           {{"epoch", rpc::Json(epoch)},
            {"pairs", rpc::Json(static_cast<uint64_t>(selected.size()))},
            {"reprobed", rpc::Json(static_cast<uint64_t>(reprobed))},
            {"flips", rpc::Json(static_cast<uint64_t>(res.flips))},
            {"hints", rpc::Json(static_cast<uint64_t>(res.hints))},
            {"drift", rpc::Json(static_cast<uint64_t>(res.changes_injected))},
            {"sim_seconds", rpc::Json(result.makespan_sim_seconds)},
            {"events", rpc::Json(events_drained)},
            {"utilization", rpc::Json(utilization)},
            {"health", rpc::Json(health_state_name(report->state))}});

  auto expo =
      std::make_shared<const std::string>(obs::expose_prometheus(metrics_));
  {
    const std::lock_guard<std::mutex> lock(versions_mutex_);
    versions_.push_back(snap);
    health_ = report;
    exposition_ = expo;
  }

  if (opt_.collect_spans) {
    const uint64_t id = tracer_.open(obs::SpanKind::kEpoch, sim_seconds_total_,
                                     obs::epoch_span_id(epoch), 0, epoch,
                                     selected.size());
    tracer_.close(id, sim_seconds_total_ + result.makespan_sim_seconds);
  }
  sim_seconds_total_ += result.makespan_sim_seconds;

  ++epochs_run_;
  return res;
}

void TopologyMonitor::run(uint64_t epochs) {
  for (uint64_t i = 0; i < epochs; ++i) run_epoch();
}

std::shared_ptr<const TopologySnapshot> TopologyMonitor::snapshot(
    uint64_t version) const {
  const std::lock_guard<std::mutex> lock(versions_mutex_);
  if (version >= versions_.size()) return nullptr;
  return versions_[version];
}

std::shared_ptr<const TopologySnapshot> TopologyMonitor::latest() const {
  const std::lock_guard<std::mutex> lock(versions_mutex_);
  return versions_.empty() ? nullptr : versions_.back();
}

uint64_t TopologyMonitor::versions() const {
  const std::lock_guard<std::mutex> lock(versions_mutex_);
  return versions_.size();
}

std::optional<TopologyDiff> TopologyMonitor::diff(uint64_t v1, uint64_t v2) const {
  std::shared_ptr<const TopologySnapshot> a, b;
  {
    const std::lock_guard<std::mutex> lock(versions_mutex_);
    if (v1 >= versions_.size() || v2 >= versions_.size()) return std::nullopt;
    a = versions_[v1];
    b = versions_[v2];
  }
  return compute_diff(*a, *b);
}

MonitorStatus TopologyMonitor::status() const {
  const std::shared_ptr<const TopologySnapshot> snap = latest();
  MonitorStatus s;
  if (snap == nullptr) {
    s.nodes = table_.nodes();
    s.pairs_total = table_.pairs_total();
  } else {
    s = make_status(*snap, versions());
  }
  // Ring-pressure telemetry (status-v2): the daemon's own rings, which —
  // unlike the per-campaign rings — accumulate over the whole run.
  s.trace_total_pushed = metrics_.trace().total_pushed();
  s.trace_dropped = metrics_.trace().dropped();
  s.log_dropped = log_.dropped();
  return s;
}

std::shared_ptr<const HealthReport> TopologyMonitor::health() const {
  const std::lock_guard<std::mutex> lock(versions_mutex_);
  return health_;
}

std::shared_ptr<const std::string> TopologyMonitor::metrics_exposition() const {
  const std::lock_guard<std::mutex> lock(versions_mutex_);
  return exposition_;
}

TrackingEvaluation evaluate_tracking(const TopologyMonitor& m, uint64_t within) {
  TrackingEvaluation ev;
  if (within == 0) return ev;
  const std::vector<InjectedChange>& log = m.injected_changes();
  const uint64_t versions = m.versions();
  double latency_sum = 0.0;
  for (size_t i = 0; i < log.size(); ++i) {
    const InjectedChange& ch = log[i];
    const uint64_t window_end = ch.epoch + within - 1;  // inclusive epochs
    // A later change to the same pair inside the window overwrites this
    // one before it can be scored fairly.
    bool superseded = false;
    for (size_t j = i + 1; j < log.size() && !superseded; ++j) {
      superseded = log[j].change.u == ch.change.u && log[j].change.v == ch.change.v &&
                   log[j].epoch <= window_end;
    }
    if (superseded) {
      ++ev.superseded;
      continue;
    }
    bool detected = false;
    uint64_t latency = 0;
    const uint64_t last = versions == 0 ? 0 : versions - 1;
    for (uint64_t v = ch.epoch; versions != 0 && v <= std::min(window_end, last); ++v) {
      const std::shared_ptr<const TopologySnapshot> snap = m.snapshot(v);
      const LinkEntry* e = snap->find(ch.change.u, ch.change.v);
      const bool connected = e != nullptr && e->verdict == core::Verdict::kConnected;
      if (connected == ch.change.added) {
        detected = true;
        latency = v - ch.epoch;
        break;
      }
    }
    if (detected) {
      ++ev.scoreable;
      ++ev.detected;
      latency_sum += static_cast<double>(latency);
    } else if (versions == 0 || window_end > versions - 1) {
      ++ev.pending;  // the window is not fully published yet
    } else {
      ++ev.scoreable;  // a clean miss
    }
  }
  ev.mean_latency_epochs =
      ev.detected == 0 ? 0.0 : latency_sum / static_cast<double>(ev.detected);
  return ev;
}

}  // namespace topo::monitor
