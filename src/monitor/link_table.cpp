#include "monitor/link_table.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace topo::monitor {

namespace {

[[noreturn]] void bad_field(const char* doc, const std::string& field,
                            const char* want) {
  throw std::runtime_error(std::string(doc) + ": field '" + field + "' must be " +
                           want);
}

double require_number(const rpc::Json& j, const char* doc, const std::string& field) {
  const rpc::Json& v = j[field];
  if (!v.is_number()) bad_field(doc, field, "a number");
  return v.as_number();
}

uint64_t require_uint(const rpc::Json& j, const char* doc, const std::string& field) {
  const double d = require_number(j, doc, field);
  if (d < 0 || d != std::floor(d)) bad_field(doc, field, "a non-negative integer");
  return static_cast<uint64_t>(d);
}

core::Verdict require_verdict(const rpc::Json& j, const char* doc,
                              const std::string& field) {
  const rpc::Json& v = j[field];
  core::Verdict out;
  if (!v.is_string() || !verdict_from_name(v.as_string(), out))
    bad_field(doc, field, "a verdict name (connected/negative/inconclusive)");
  return out;
}

void require_schema(const rpc::Json& j, const char* doc, const char* schema) {
  if (!j.is_object()) throw std::runtime_error(std::string(doc) + ": not an object");
  if (!j["schema"].is_string() || j["schema"].as_string() != schema)
    bad_field(doc, "schema", schema);
}

rpc::Json pair_list_to_json(const std::vector<std::pair<size_t, size_t>>& pairs) {
  rpc::JsonArray out;
  out.reserve(pairs.size());
  for (const auto& [u, v] : pairs) {
    out.push_back(rpc::Json(rpc::JsonArray{
        rpc::Json(static_cast<uint64_t>(u)), rpc::Json(static_cast<uint64_t>(v))}));
  }
  return rpc::Json(std::move(out));
}

std::vector<std::pair<size_t, size_t>> pair_list_from_json(const rpc::Json& j,
                                                           const char* doc,
                                                           const std::string& field) {
  const rpc::Json& arr = j[field];
  if (!arr.is_array()) bad_field(doc, field, "an array of [u, v] pairs");
  std::vector<std::pair<size_t, size_t>> out;
  out.reserve(arr.as_array().size());
  for (const rpc::Json& e : arr.as_array()) {
    if (!e.is_array() || e.as_array().size() != 2 || !e[size_t{0}].is_number() ||
        !e[size_t{1}].is_number())
      bad_field(doc, field, "an array of [u, v] pairs");
    out.emplace_back(static_cast<size_t>(e[size_t{0}].as_number()),
                     static_cast<size_t>(e[size_t{1}].as_number()));
  }
  return out;
}

}  // namespace

const char* verdict_name(core::Verdict v) {
  switch (v) {
    case core::Verdict::kConnected: return "connected";
    case core::Verdict::kNegative: return "negative";
    case core::Verdict::kInconclusive: return "inconclusive";
  }
  return "unknown";
}

bool verdict_from_name(const std::string& name, core::Verdict& out) {
  for (core::Verdict v : {core::Verdict::kConnected, core::Verdict::kNegative,
                          core::Verdict::kInconclusive}) {
    if (name == verdict_name(v)) {
      out = v;
      return true;
    }
  }
  return false;
}

size_t TopologySnapshot::connected_count() const {
  return static_cast<size_t>(
      std::count_if(links.begin(), links.end(), [](const LinkEntry& e) {
        return e.verdict == core::Verdict::kConnected;
      }));
}

size_t TopologySnapshot::inconclusive_count() const {
  return static_cast<size_t>(
      std::count_if(links.begin(), links.end(), [](const LinkEntry& e) {
        return e.verdict == core::Verdict::kInconclusive;
      }));
}

const LinkEntry* TopologySnapshot::find(size_t u, size_t v) const {
  if (u > v) std::swap(u, v);
  const auto it = std::lower_bound(
      links.begin(), links.end(), std::make_pair(u, v),
      [](const LinkEntry& e, const std::pair<size_t, size_t>& p) {
        return std::make_pair(e.u, e.v) < p;
      });
  if (it == links.end() || it->u != u || it->v != v) return nullptr;
  return &*it;
}

TopologyDiff compute_diff(const TopologySnapshot& from, const TopologySnapshot& to) {
  TopologyDiff d;
  d.from = from.version;
  d.to = to.version;
  // Both link lists are sorted by (u, v); one linear merge finds every
  // transition. A pair absent from a snapshot counts as kInconclusive
  // ("nothing known"), so newly measured pairs surface as changes too.
  size_t i = 0, j = 0;
  const auto emit = [&](size_t u, size_t v, core::Verdict a, core::Verdict b) {
    if (a == b) return;
    d.changed.push_back({u, v, a, b});
    if (b == core::Verdict::kConnected) d.added.emplace_back(u, v);
    if (a == core::Verdict::kConnected) d.removed.emplace_back(u, v);
  };
  while (i < from.links.size() || j < to.links.size()) {
    if (j == to.links.size() ||
        (i < from.links.size() &&
         std::make_pair(from.links[i].u, from.links[i].v) <
             std::make_pair(to.links[j].u, to.links[j].v))) {
      const LinkEntry& e = from.links[i++];
      emit(e.u, e.v, e.verdict, core::Verdict::kInconclusive);
    } else if (i == from.links.size() ||
               std::make_pair(to.links[j].u, to.links[j].v) <
                   std::make_pair(from.links[i].u, from.links[i].v)) {
      const LinkEntry& e = to.links[j++];
      emit(e.u, e.v, core::Verdict::kInconclusive, e.verdict);
    } else {
      const LinkEntry& a = from.links[i++];
      const LinkEntry& b = to.links[j++];
      emit(a.u, a.v, a.verdict, b.verdict);
    }
  }
  return d;
}

MonitorStatus make_status(const TopologySnapshot& latest, uint64_t versions) {
  MonitorStatus s;
  s.epoch = latest.epoch;
  s.version = latest.version;
  s.versions = versions;
  s.nodes = latest.nodes;
  s.pairs_total = latest.pairs_total;
  s.pairs_tracked = latest.links.size();
  s.links_connected = latest.connected_count();
  s.links_inconclusive = latest.inconclusive_count();
  s.coverage = latest.pairs_total == 0
                   ? 0.0
                   : static_cast<double>(s.pairs_tracked) /
                         static_cast<double>(latest.pairs_total);
  s.pairs_measured = latest.pairs_measured;
  s.changes_observed = latest.changes_observed;
  for (const LinkEntry& e : latest.links) {
    const double c = std::clamp(e.confidence, 0.0, 1.0);
    const size_t bin = std::min<size_t>(9, static_cast<size_t>(c * 10.0));
    ++s.confidence_histogram[bin];
  }
  return s;
}

rpc::Json snapshot_to_json(const TopologySnapshot& s) {
  rpc::JsonArray links;
  links.reserve(s.links.size());
  for (const LinkEntry& e : s.links) {
    links.push_back(rpc::Json(rpc::JsonObject{
        {"u", rpc::Json(static_cast<uint64_t>(e.u))},
        {"v", rpc::Json(static_cast<uint64_t>(e.v))},
        {"verdict", rpc::Json(verdict_name(e.verdict))},
        {"confidence", rpc::Json(e.confidence)},
        {"measured_epoch", rpc::Json(e.measured_epoch)},
        {"changed_epoch", rpc::Json(e.changed_epoch)},
    }));
  }
  return rpc::Json(rpc::JsonObject{
      {"schema", rpc::Json(kSnapshotSchema)},
      {"version", rpc::Json(s.version)},
      {"epoch", rpc::Json(s.epoch)},
      {"nodes", rpc::Json(static_cast<uint64_t>(s.nodes))},
      {"pairs_total", rpc::Json(static_cast<uint64_t>(s.pairs_total))},
      {"pairs_measured", rpc::Json(s.pairs_measured)},
      {"changes_observed", rpc::Json(s.changes_observed)},
      {"links", rpc::Json(std::move(links))},
  });
}

TopologySnapshot snapshot_from_json(const rpc::Json& j) {
  static constexpr const char* doc = "snapshot";
  require_schema(j, doc, kSnapshotSchema);
  TopologySnapshot s;
  s.version = require_uint(j, doc, "version");
  s.epoch = require_uint(j, doc, "epoch");
  s.nodes = static_cast<size_t>(require_uint(j, doc, "nodes"));
  s.pairs_total = static_cast<size_t>(require_uint(j, doc, "pairs_total"));
  s.pairs_measured = require_uint(j, doc, "pairs_measured");
  s.changes_observed = require_uint(j, doc, "changes_observed");
  const rpc::Json& links = j["links"];
  if (!links.is_array()) bad_field(doc, "links", "an array");
  s.links.reserve(links.as_array().size());
  for (const rpc::Json& e : links.as_array()) {
    if (!e.is_object()) bad_field(doc, "links", "an array of objects");
    LinkEntry le;
    le.u = static_cast<size_t>(require_uint(e, doc, "u"));
    le.v = static_cast<size_t>(require_uint(e, doc, "v"));
    le.verdict = require_verdict(e, doc, "verdict");
    le.confidence = require_number(e, doc, "confidence");
    le.measured_epoch = require_uint(e, doc, "measured_epoch");
    le.changed_epoch = require_uint(e, doc, "changed_epoch");
    s.links.push_back(le);
  }
  return s;
}

rpc::Json diff_to_json(const TopologyDiff& d) {
  rpc::JsonArray changed;
  changed.reserve(d.changed.size());
  for (const VerdictChange& c : d.changed) {
    changed.push_back(rpc::Json(rpc::JsonObject{
        {"u", rpc::Json(static_cast<uint64_t>(c.u))},
        {"v", rpc::Json(static_cast<uint64_t>(c.v))},
        {"from", rpc::Json(verdict_name(c.from))},
        {"to", rpc::Json(verdict_name(c.to))},
    }));
  }
  return rpc::Json(rpc::JsonObject{
      {"schema", rpc::Json(kDiffSchema)},
      {"from", rpc::Json(d.from)},
      {"to", rpc::Json(d.to)},
      {"added", pair_list_to_json(d.added)},
      {"removed", pair_list_to_json(d.removed)},
      {"changed", rpc::Json(std::move(changed))},
  });
}

TopologyDiff diff_from_json(const rpc::Json& j) {
  static constexpr const char* doc = "diff";
  require_schema(j, doc, kDiffSchema);
  TopologyDiff d;
  d.from = require_uint(j, doc, "from");
  d.to = require_uint(j, doc, "to");
  d.added = pair_list_from_json(j, doc, "added");
  d.removed = pair_list_from_json(j, doc, "removed");
  const rpc::Json& changed = j["changed"];
  if (!changed.is_array()) bad_field(doc, "changed", "an array");
  d.changed.reserve(changed.as_array().size());
  for (const rpc::Json& e : changed.as_array()) {
    if (!e.is_object()) bad_field(doc, "changed", "an array of objects");
    VerdictChange c;
    c.u = static_cast<size_t>(require_uint(e, doc, "u"));
    c.v = static_cast<size_t>(require_uint(e, doc, "v"));
    c.from = require_verdict(e, doc, "from");
    c.to = require_verdict(e, doc, "to");
    d.changed.push_back(c);
  }
  return d;
}

rpc::Json status_to_json(const MonitorStatus& s) {
  rpc::JsonArray hist;
  hist.reserve(s.confidence_histogram.size());
  for (uint64_t c : s.confidence_histogram) hist.push_back(rpc::Json(c));
  return rpc::Json(rpc::JsonObject{
      {"schema", rpc::Json(kStatusSchema)},
      {"epoch", rpc::Json(s.epoch)},
      {"version", rpc::Json(s.version)},
      {"versions", rpc::Json(s.versions)},
      {"nodes", rpc::Json(static_cast<uint64_t>(s.nodes))},
      {"pairs_total", rpc::Json(static_cast<uint64_t>(s.pairs_total))},
      {"pairs_tracked", rpc::Json(static_cast<uint64_t>(s.pairs_tracked))},
      {"links_connected", rpc::Json(static_cast<uint64_t>(s.links_connected))},
      {"links_inconclusive", rpc::Json(static_cast<uint64_t>(s.links_inconclusive))},
      {"coverage", rpc::Json(s.coverage)},
      {"pairs_measured", rpc::Json(s.pairs_measured)},
      {"changes_observed", rpc::Json(s.changes_observed)},
      {"confidence_histogram", rpc::Json(std::move(hist))},
      {"trace_total_pushed", rpc::Json(s.trace_total_pushed)},
      {"trace_dropped", rpc::Json(s.trace_dropped)},
      {"log_dropped", rpc::Json(s.log_dropped)},
  });
}

MonitorStatus status_from_json(const rpc::Json& j) {
  static constexpr const char* doc = "status";
  require_schema(j, doc, kStatusSchema);
  MonitorStatus s;
  s.epoch = require_uint(j, doc, "epoch");
  s.version = require_uint(j, doc, "version");
  s.versions = require_uint(j, doc, "versions");
  s.nodes = static_cast<size_t>(require_uint(j, doc, "nodes"));
  s.pairs_total = static_cast<size_t>(require_uint(j, doc, "pairs_total"));
  s.pairs_tracked = static_cast<size_t>(require_uint(j, doc, "pairs_tracked"));
  s.links_connected = static_cast<size_t>(require_uint(j, doc, "links_connected"));
  s.links_inconclusive =
      static_cast<size_t>(require_uint(j, doc, "links_inconclusive"));
  s.coverage = require_number(j, doc, "coverage");
  s.pairs_measured = require_uint(j, doc, "pairs_measured");
  s.changes_observed = require_uint(j, doc, "changes_observed");
  const rpc::Json& hist = j["confidence_histogram"];
  if (!hist.is_array() || hist.as_array().size() != s.confidence_histogram.size())
    bad_field(doc, "confidence_histogram", "an array of 10 counts");
  for (size_t i = 0; i < s.confidence_histogram.size(); ++i) {
    const rpc::Json& b = hist[i];
    if (!b.is_number()) bad_field(doc, "confidence_histogram", "an array of 10 counts");
    s.confidence_histogram[i] = static_cast<uint64_t>(b.as_number());
  }
  s.trace_total_pushed = require_uint(j, doc, "trace_total_pushed");
  s.trace_dropped = require_uint(j, doc, "trace_dropped");
  s.log_dropped = require_uint(j, doc, "log_dropped");
  return s;
}

const LinkTable::Entry* LinkTable::find(size_t u, size_t v) const {
  if (u > v) std::swap(u, v);
  const auto it = entries_.find(key(u, v));
  return it == entries_.end() ? nullptr : &it->second;
}

bool LinkTable::record(size_t u, size_t v, core::Verdict verdict, uint64_t epoch) {
  if (u > v) std::swap(u, v);
  auto [it, inserted] = entries_.try_emplace(key(u, v));
  Entry& e = it->second;
  const bool flipped = !inserted && e.verdict != verdict;
  if (inserted || flipped) e.changed_epoch = epoch;
  e.verdict = verdict;
  e.measured_epoch = epoch;
  e.hints = 0;
  return flipped;
}

size_t LinkTable::hinted(uint8_t min_strength) const {
  size_t n = 0;
  for (const auto& [k, e] : entries_) n += e.hints >= min_strength ? 1 : 0;
  return n;
}

size_t LinkTable::hint_node(size_t node) {
  size_t newly = 0;
  for (size_t other = 0; other < nodes_; ++other) {
    if (other == node) continue;
    const auto it = entries_.find(key(std::min(node, other), std::max(node, other)));
    if (it == entries_.end() || it->second.hints >= 2) continue;
    if (it->second.hints == 0) ++newly;
    ++it->second.hints;
  }
  return newly;
}

namespace {
double decayed(const LinkTable::Entry& e, uint64_t epoch, double half_life) {
  if (e.hints > 0) return 0.0;
  if (half_life <= 0.0) return 1.0;
  const double age = static_cast<double>(epoch - e.measured_epoch);
  return std::exp2(-age / half_life);
}
}  // namespace

double LinkTable::confidence(size_t u, size_t v, uint64_t epoch,
                             double half_life) const {
  const Entry* e = find(u, v);
  return e == nullptr ? 0.0 : decayed(*e, epoch, half_life);
}

TopologySnapshot LinkTable::snapshot(uint64_t epoch, double half_life,
                                     uint64_t pairs_measured,
                                     uint64_t changes_observed) const {
  TopologySnapshot s;
  s.version = epoch;
  s.epoch = epoch;
  s.nodes = nodes_;
  s.pairs_total = pairs_total();
  s.pairs_measured = pairs_measured;
  s.changes_observed = changes_observed;
  s.links.reserve(entries_.size());
  for (const auto& [k, e] : entries_) {
    LinkEntry le;
    le.u = static_cast<size_t>(k >> 32);
    le.v = static_cast<size_t>(k & 0xFFFFFFFFu);
    le.verdict = e.verdict;
    le.confidence = decayed(e, epoch, half_life);
    le.measured_epoch = e.measured_epoch;
    le.changed_epoch = e.changed_epoch;
    s.links.push_back(le);
  }
  return s;
}

std::vector<std::pair<size_t, size_t>> LinkTable::prioritized_pairs(
    uint64_t epoch, double half_life) const {
  struct Candidate {
    uint8_t hints;
    double conf;
    uint64_t measured;
    size_t u, v;
  };
  std::vector<Candidate> cands;
  cands.reserve(pairs_total());
  for (size_t u = 0; u + 1 < nodes_; ++u) {
    for (size_t v = u + 1; v < nodes_; ++v) {
      const auto it = entries_.find(key(u, v));
      if (it == entries_.end()) {
        cands.push_back({0, 0.0, 0, u, v});
      } else {
        cands.push_back({it->second.hints, decayed(it->second, epoch, half_life),
                         it->second.measured_epoch, u, v});
      }
    }
  }
  std::stable_sort(cands.begin(), cands.end(), [](const Candidate& a, const Candidate& b) {
    if (a.hints != b.hints) return a.hints > b.hints;
    if (a.conf != b.conf) return a.conf < b.conf;
    if (a.measured != b.measured) return a.measured < b.measured;
    if (a.u != b.u) return a.u < b.u;
    return a.v < b.v;
  });
  std::vector<std::pair<size_t, size_t>> out;
  out.reserve(cands.size());
  for (const Candidate& c : cands) out.emplace_back(c.u, c.v);
  return out;
}

}  // namespace topo::monitor
