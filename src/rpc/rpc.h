#pragma once

// Simulated Ethereum JSON-RPC endpoint over a p2p::Node — the interface the
// paper's tooling drives:
//
//   web3_clientVersion        — client/codename matching (§6.3 discovery)
//   net_version, net_peerCount
//   eth_blockNumber, eth_getBlockByNumber
//   eth_getTransactionByHash  — the §6.1 validation check ("is txC evicted?")
//   eth_sendRawTransaction    — RLP-encoded submission through the wire codec
//   txpool_status, txpool_content
//   admin_peers               — the controlled node's ground-truth peer list
//
// Requests and responses are JSON-RPC 2.0 documents; RpcServer::handle takes
// and returns serialized strings, exactly what an HTTP transport would carry.

#include <functional>
#include <string>

#include "p2p/network.h"
#include "rpc/json.h"

namespace topo::rpc {

/// JSON-RPC 2.0 error codes used by the endpoint.
inline constexpr int kParseError = -32700;
inline constexpr int kInvalidRequest = -32600;
inline constexpr int kMethodNotFound = -32601;
inline constexpr int kInvalidParams = -32602;

/// JSON-RPC 2.0 response envelopes, shared by every simulated endpoint
/// (the per-node Ethereum server below, the monitor's read API).
Json make_error_response(const Json& id, int code, const std::string& message);
Json make_result_response(const Json& id, Json value);

/// Serialized-transport framing shared by every endpoint: parses `request`
/// and applies JSON-RPC 2.0 batch semantics before handing each request
/// object to `handle_one`. An array is a batch (responses in request
/// order); an *empty* array is a kInvalidRequest error object per the
/// spec; notifications — request objects without an "id" member — are
/// dispatched for their side effects but contribute no response entry,
/// and a batch of only notifications yields no response document at all
/// (the empty string, where a real transport would send HTTP 204).
std::string handle_serialized(const std::string& request,
                              const std::function<Json(const Json&)>& handle_one);

/// One endpoint per simulated node.
class RpcServer {
 public:
  /// `network_id` mirrors the chain being served (1 mainnet, 3 Ropsten...).
  RpcServer(p2p::Network* net, p2p::PeerId node, uint64_t network_id = 1);

  /// Handles one serialized JSON-RPC request *or batch array* (see
  /// handle_serialized for the framing rules); returns the serialized
  /// response — a single object, a response array, or the empty string for
  /// an all-notification batch.
  std::string handle(const std::string& request);

  /// Structured entry point (skips serialization), useful in-process.
  Json handle_json(const Json& request);

  p2p::PeerId node_id() const { return node_; }

 private:
  Json dispatch(const std::string& method, const Json& params);
  Json error(const Json& id, int code, const std::string& message) const;
  Json result(const Json& id, Json value) const;

  Json tx_to_json(const eth::Transaction& tx, bool include_pool_state) const;

  p2p::Network* net_;
  p2p::PeerId node_;
  uint64_t network_id_;
};

/// Thin client: builds JSON-RPC requests, dispatches to a server (the
/// in-process stand-in for HTTP), and unwraps results.
class RpcClient {
 public:
  explicit RpcClient(RpcServer* server) : server_(server) {}

  /// Calls `method` with positional params; returns the `result` field, or
  /// nullopt if the server returned an error.
  std::optional<Json> call(const std::string& method, JsonArray params = {});

  /// Convenience wrappers mirroring the paper's usage.
  std::optional<std::string> client_version();
  std::optional<uint64_t> block_number();
  /// True if the hash is known (pooled or mined) on the node.
  bool has_transaction(eth::TxHash hash);
  /// Submits an RLP-encoded transaction; returns its hash string.
  std::optional<std::string> send_raw_transaction(const eth::Transaction& tx);
  /// Peer ids of the node's active neighbors (admin_peers).
  std::vector<p2p::PeerId> peers();

 private:
  RpcServer* server_;
  uint64_t next_id_ = 1;
};

/// Formats a simulated 64-bit hash in Ethereum's 32-byte hex convention.
std::string hash_to_hex(eth::TxHash h);
std::optional<eth::TxHash> hash_from_hex(const std::string& s);

}  // namespace topo::rpc
