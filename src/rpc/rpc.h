#pragma once

// Simulated Ethereum JSON-RPC endpoint over a p2p::Node — the interface the
// paper's tooling drives:
//
//   web3_clientVersion        — client/codename matching (§6.3 discovery)
//   net_version, net_peerCount
//   eth_blockNumber, eth_getBlockByNumber
//   eth_getTransactionByHash  — the §6.1 validation check ("is txC evicted?")
//   eth_sendRawTransaction    — RLP-encoded submission through the wire codec
//   txpool_status, txpool_content
//   admin_peers               — the controlled node's ground-truth peer list
//
// Requests and responses are JSON-RPC 2.0 documents; RpcServer::handle takes
// and returns serialized strings, exactly what an HTTP transport would carry.

#include <string>

#include "p2p/network.h"
#include "rpc/json.h"

namespace topo::rpc {

/// JSON-RPC 2.0 error codes used by the endpoint.
inline constexpr int kParseError = -32700;
inline constexpr int kInvalidRequest = -32600;
inline constexpr int kMethodNotFound = -32601;
inline constexpr int kInvalidParams = -32602;

/// One endpoint per simulated node.
class RpcServer {
 public:
  /// `network_id` mirrors the chain being served (1 mainnet, 3 Ropsten...).
  RpcServer(p2p::Network* net, p2p::PeerId node, uint64_t network_id = 1);

  /// Handles one serialized JSON-RPC request; always returns a serialized
  /// response (result or error).
  std::string handle(const std::string& request);

  /// Structured entry point (skips serialization), useful in-process.
  Json handle_json(const Json& request);

  p2p::PeerId node_id() const { return node_; }

 private:
  Json dispatch(const std::string& method, const Json& params);
  Json error(const Json& id, int code, const std::string& message) const;
  Json result(const Json& id, Json value) const;

  Json tx_to_json(const eth::Transaction& tx, bool include_pool_state) const;

  p2p::Network* net_;
  p2p::PeerId node_;
  uint64_t network_id_;
};

/// Thin client: builds JSON-RPC requests, dispatches to a server (the
/// in-process stand-in for HTTP), and unwraps results.
class RpcClient {
 public:
  explicit RpcClient(RpcServer* server) : server_(server) {}

  /// Calls `method` with positional params; returns the `result` field, or
  /// nullopt if the server returned an error.
  std::optional<Json> call(const std::string& method, JsonArray params = {});

  /// Convenience wrappers mirroring the paper's usage.
  std::optional<std::string> client_version();
  std::optional<uint64_t> block_number();
  /// True if the hash is known (pooled or mined) on the node.
  bool has_transaction(eth::TxHash hash);
  /// Submits an RLP-encoded transaction; returns its hash string.
  std::optional<std::string> send_raw_transaction(const eth::Transaction& tx);
  /// Peer ids of the node's active neighbors (admin_peers).
  std::vector<p2p::PeerId> peers();

 private:
  RpcServer* server_;
  uint64_t next_id_ = 1;
};

/// Formats a simulated 64-bit hash in Ethereum's 32-byte hex convention.
std::string hash_to_hex(eth::TxHash h);
std::optional<eth::TxHash> hash_from_hex(const std::string& s);

}  // namespace topo::rpc
