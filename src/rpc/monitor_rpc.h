#pragma once

// JSON-RPC read API of the topology-monitoring daemon (docs/MONITORING.md):
//
//   topo_getSnapshot [version?]  — one published TopologySnapshot
//                                  (latest when the param is omitted)
//   topo_getDiff     [v1, v2]    — structural diff between two versions
//   topo_getStatus   []          — aggregate daemon state (status-v2,
//                                  including ring-pressure telemetry)
//   topo_getMetrics  ["raw"?]    — Prometheus text exposition of the
//                                  monitor registry; [] wraps the body in
//                                  a {schema, format, body} object, ["raw"]
//                                  returns the exposition string itself
//   topo_getHealth   []          — watchdog verdict + the EpochStats ring
//                                  (toposhot-health-v1)
//
// Reads are served exclusively from the monitor's immutable published
// versions (snapshots, health reports, exposition strings), so any number
// of concurrent clients never block (or observe a torn view of) the
// measurement loop. The transport framing — including JSON-RPC 2.0 batch
// arrays — is shared with the per-node Ethereum endpoint via
// rpc::handle_serialized. Every error response is also appended to the
// monitor's structured event log (subsystem "rpc", level warn); the log is
// internally synchronized, so this is safe from reader threads.
//
// This header lives in src/rpc for discoverability but compiles into the
// topo_monitor library: topo_rpc sits *below* topo_core in the layering,
// while the server needs monitor::TopologyMonitor from near the top.

#include <string>

#include "rpc/json.h"
#include "rpc/rpc.h"

namespace topo::monitor {
class TopologyMonitor;
}

namespace topo::rpc {

/// Schema tag of the wrapped topo_getMetrics result object.
inline constexpr const char* kMetricsSchema = "toposhot-metrics-v1";

/// One read endpoint per daemon. The monitor must outlive the server; the
/// server only ever touches the monitor's thread-safe read API, so it can
/// run on any thread (the --serve-script replay, a test's reader threads).
class MonitorRpcServer {
 public:
  explicit MonitorRpcServer(const monitor::TopologyMonitor* mon) : mon_(mon) {}

  /// Handles one serialized JSON-RPC request or batch array; returns the
  /// serialized response (empty string for an all-notification batch).
  std::string handle(const std::string& request);

  /// Structured entry point (skips serialization), useful in-process.
  Json handle_json(const Json& request);

 private:
  Json dispatch(const std::string& method, const Json& params);
  void log_error(const std::string& method, int code, const std::string& message);

  const monitor::TopologyMonitor* mon_;
};

}  // namespace topo::rpc
