#pragma once

// Minimal JSON value + parser/serializer for the simulated JSON-RPC layer.
// Supports the full JSON grammar: \uXXXX escapes decode to UTF-8, with
// surrogate pairs combined into supplementary-plane code points and lone
// surrogates rejected as parse errors; numbers are stored as double
// (sufficient for RPC ids) with integral fast-paths for serialization.

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace topo::rpc {

class Json;
using JsonArray = std::vector<Json>;
using JsonObject = std::map<std::string, Json>;

class Json {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() : kind_(Kind::kNull) {}
  Json(std::nullptr_t) : kind_(Kind::kNull) {}
  Json(bool b) : kind_(Kind::kBool), bool_(b) {}
  Json(int v) : kind_(Kind::kNumber), num_(v) {}
  Json(int64_t v) : kind_(Kind::kNumber), num_(static_cast<double>(v)) {}
  Json(uint64_t v) : kind_(Kind::kNumber), num_(static_cast<double>(v)) {}
  Json(double v) : kind_(Kind::kNumber), num_(v) {}
  Json(const char* s) : kind_(Kind::kString), str_(s) {}
  Json(std::string s) : kind_(Kind::kString), str_(std::move(s)) {}
  Json(JsonArray a) : kind_(Kind::kArray), arr_(std::move(a)) {}
  Json(JsonObject o) : kind_(Kind::kObject), obj_(std::move(o)) {}

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool as_bool() const { return bool_; }
  double as_number() const { return num_; }
  const std::string& as_string() const { return str_; }
  const JsonArray& as_array() const { return arr_; }
  const JsonObject& as_object() const { return obj_; }
  JsonArray& as_array() { return arr_; }
  JsonObject& as_object() { return obj_; }

  /// Object field lookup; returns a static null for absent keys.
  const Json& operator[](const std::string& key) const;
  /// Array index; static null when out of range.
  const Json& operator[](size_t i) const;

  std::string dump() const;

  /// Strict parse of a complete document; nullopt on any syntax error.
  static std::optional<Json> parse(const std::string& text);

  bool operator==(const Json& o) const;

 private:
  Kind kind_;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  JsonArray arr_;
  JsonObject obj_;
};

/// Hex helpers used by Ethereum's JSON-RPC conventions ("0x...").
std::string to_hex_quantity(uint64_t v);               // minimal, e.g. "0x1a"
std::string to_hex_bytes(const std::vector<uint8_t>&); // padded data blob
std::optional<uint64_t> from_hex_quantity(const std::string& s);
std::optional<std::vector<uint8_t>> from_hex_bytes(const std::string& s);

}  // namespace topo::rpc
