#include "rpc/json.h"

#include <cmath>
#include <cstdio>
#include <cstring>

namespace topo::rpc {

namespace {
const Json kNullJson{};
}

const Json& Json::operator[](const std::string& key) const {
  if (kind_ == Kind::kObject) {
    auto it = obj_.find(key);
    if (it != obj_.end()) return it->second;
  }
  return kNullJson;
}

const Json& Json::operator[](size_t i) const {
  if (kind_ == Kind::kArray && i < arr_.size()) return arr_[i];
  return kNullJson;
}

bool Json::operator==(const Json& o) const {
  if (kind_ != o.kind_) return false;
  switch (kind_) {
    case Kind::kNull: return true;
    case Kind::kBool: return bool_ == o.bool_;
    case Kind::kNumber: return num_ == o.num_;
    case Kind::kString: return str_ == o.str_;
    case Kind::kArray: return arr_ == o.arr_;
    case Kind::kObject: return obj_ == o.obj_;
  }
  return false;
}

namespace {

void dump_string(const std::string& s, std::string& out) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void dump_value(const Json& v, std::string& out) {
  switch (v.kind()) {
    case Json::Kind::kNull:
      out += "null";
      break;
    case Json::Kind::kBool:
      out += v.as_bool() ? "true" : "false";
      break;
    case Json::Kind::kNumber: {
      const double d = v.as_number();
      if (std::nearbyint(d) == d && std::fabs(d) < 9.0e15) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(d));
        out += buf;
      } else {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.17g", d);
        out += buf;
      }
      break;
    }
    case Json::Kind::kString:
      dump_string(v.as_string(), out);
      break;
    case Json::Kind::kArray: {
      out.push_back('[');
      bool first = true;
      for (const auto& e : v.as_array()) {
        if (!first) out.push_back(',');
        first = false;
        dump_value(e, out);
      }
      out.push_back(']');
      break;
    }
    case Json::Kind::kObject: {
      out.push_back('{');
      bool first = true;
      for (const auto& [k, e] : v.as_object()) {
        if (!first) out.push_back(',');
        first = false;
        dump_string(k, out);
        out.push_back(':');
        dump_value(e, out);
      }
      out.push_back('}');
      break;
    }
  }
}

struct Parser {
  const char* p;
  const char* end;

  void skip_ws() {
    while (p < end && (*p == ' ' || *p == '\t' || *p == '\n' || *p == '\r')) ++p;
  }
  bool literal(const char* s) {
    const size_t n = std::strlen(s);
    if (static_cast<size_t>(end - p) < n || std::strncmp(p, s, n) != 0) return false;
    p += n;
    return true;
  }

  std::optional<Json> value() {
    skip_ws();
    if (p >= end) return std::nullopt;
    switch (*p) {
      case 'n': return literal("null") ? std::optional<Json>(Json()) : std::nullopt;
      case 't': return literal("true") ? std::optional<Json>(Json(true)) : std::nullopt;
      case 'f': return literal("false") ? std::optional<Json>(Json(false)) : std::nullopt;
      case '"': return string_value();
      case '[': return array_value();
      case '{': return object_value();
      default: return number_value();
    }
  }

  std::optional<Json> string_value() {
    ++p;  // opening quote
    std::string out;
    while (p < end && *p != '"') {
      if (*p == '\\') {
        ++p;
        if (p >= end) return std::nullopt;
        switch (*p) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'u': {
            // Reads the 4 hex digits after the 'u' at *p, leaving p on the
            // last digit (the shared ++p below steps past it).
            const auto hex4 = [this](unsigned& code) -> bool {
              if (end - p < 5) return false;
              code = 0;
              for (int i = 1; i <= 4; ++i) {
                const char c = p[i];
                code <<= 4;
                if (c >= '0' && c <= '9') code |= static_cast<unsigned>(c - '0');
                else if (c >= 'a' && c <= 'f') code |= static_cast<unsigned>(c - 'a' + 10);
                else if (c >= 'A' && c <= 'F') code |= static_cast<unsigned>(c - 'A' + 10);
                else return false;
              }
              p += 4;
              return true;
            };
            unsigned code = 0;
            if (!hex4(code)) return std::nullopt;
            // Surrogate halves are not code points: a lone low surrogate
            // (or a high one without its partner, below) is a parse error
            // rather than mojibake in the output.
            if (code >= 0xdc00 && code <= 0xdfff) return std::nullopt;
            if (code >= 0xd800 && code <= 0xdbff) {
              // High surrogate: combine with the mandatory following
              // \uDC00-\uDFFF escape into one supplementary-plane point.
              if (end - p < 3 || p[1] != '\\' || p[2] != 'u') return std::nullopt;
              p += 2;  // onto the second 'u'
              unsigned low = 0;
              if (!hex4(low)) return std::nullopt;
              if (low < 0xdc00 || low > 0xdfff) return std::nullopt;
              code = 0x10000 + ((code - 0xd800) << 10) + (low - 0xdc00);
            }
            if (code < 0x80) {
              out.push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out.push_back(static_cast<char>(0xc0 | (code >> 6)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
            } else if (code < 0x10000) {
              out.push_back(static_cast<char>(0xe0 | (code >> 12)));
              out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
            } else {
              out.push_back(static_cast<char>(0xf0 | (code >> 18)));
              out.push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3f)));
              out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
            }
            break;
          }
          default: return std::nullopt;
        }
        ++p;
      } else {
        out.push_back(*p++);
      }
    }
    if (p >= end) return std::nullopt;
    ++p;  // closing quote
    return Json(std::move(out));
  }

  std::optional<Json> number_value() {
    const char* start = p;
    if (p < end && *p == '-') ++p;
    while (p < end && ((*p >= '0' && *p <= '9') || *p == '.' || *p == 'e' || *p == 'E' ||
                       *p == '+' || *p == '-')) {
      ++p;
    }
    if (p == start) return std::nullopt;
    char* parsed_end = nullptr;
    const std::string text(start, p);
    const double v = std::strtod(text.c_str(), &parsed_end);
    if (parsed_end != text.c_str() + text.size()) return std::nullopt;
    return Json(v);
  }

  std::optional<Json> array_value() {
    ++p;  // '['
    JsonArray out;
    skip_ws();
    if (p < end && *p == ']') {
      ++p;
      return Json(std::move(out));
    }
    while (true) {
      auto v = value();
      if (!v) return std::nullopt;
      out.push_back(std::move(*v));
      skip_ws();
      if (p < end && *p == ',') {
        ++p;
        continue;
      }
      if (p < end && *p == ']') {
        ++p;
        return Json(std::move(out));
      }
      return std::nullopt;
    }
  }

  std::optional<Json> object_value() {
    ++p;  // '{'
    JsonObject out;
    skip_ws();
    if (p < end && *p == '}') {
      ++p;
      return Json(std::move(out));
    }
    while (true) {
      skip_ws();
      if (p >= end || *p != '"') return std::nullopt;
      auto key = string_value();
      if (!key) return std::nullopt;
      skip_ws();
      if (p >= end || *p != ':') return std::nullopt;
      ++p;
      auto v = value();
      if (!v) return std::nullopt;
      out[key->as_string()] = std::move(*v);
      skip_ws();
      if (p < end && *p == ',') {
        ++p;
        continue;
      }
      if (p < end && *p == '}') {
        ++p;
        return Json(std::move(out));
      }
      return std::nullopt;
    }
  }
};

}  // namespace

std::string Json::dump() const {
  std::string out;
  dump_value(*this, out);
  return out;
}

std::optional<Json> Json::parse(const std::string& text) {
  Parser parser{text.data(), text.data() + text.size()};
  auto v = parser.value();
  if (!v) return std::nullopt;
  parser.skip_ws();
  if (parser.p != parser.end) return std::nullopt;
  return v;
}

std::string to_hex_quantity(uint64_t v) {
  char buf[20];
  std::snprintf(buf, sizeof buf, "0x%llx", static_cast<unsigned long long>(v));
  return buf;
}

std::string to_hex_bytes(const std::vector<uint8_t>& bytes) {
  std::string out = "0x";
  static const char* digits = "0123456789abcdef";
  for (uint8_t b : bytes) {
    out.push_back(digits[b >> 4]);
    out.push_back(digits[b & 0xf]);
  }
  return out;
}

namespace {
std::optional<unsigned> hex_digit(char c) {
  if (c >= '0' && c <= '9') return static_cast<unsigned>(c - '0');
  if (c >= 'a' && c <= 'f') return static_cast<unsigned>(c - 'a' + 10);
  if (c >= 'A' && c <= 'F') return static_cast<unsigned>(c - 'A' + 10);
  return std::nullopt;
}
}  // namespace

std::optional<uint64_t> from_hex_quantity(const std::string& s) {
  if (s.size() < 3 || s[0] != '0' || (s[1] != 'x' && s[1] != 'X')) return std::nullopt;
  if (s.size() > 2 + 16) return std::nullopt;
  uint64_t v = 0;
  for (size_t i = 2; i < s.size(); ++i) {
    auto d = hex_digit(s[i]);
    if (!d) return std::nullopt;
    v = (v << 4) | *d;
  }
  return v;
}

std::optional<std::vector<uint8_t>> from_hex_bytes(const std::string& s) {
  if (s.size() < 2 || s[0] != '0' || (s[1] != 'x' && s[1] != 'X')) return std::nullopt;
  if ((s.size() - 2) % 2 != 0) return std::nullopt;
  std::vector<uint8_t> out;
  out.reserve((s.size() - 2) / 2);
  for (size_t i = 2; i < s.size(); i += 2) {
    auto hi = hex_digit(s[i]);
    auto lo = hex_digit(s[i + 1]);
    if (!hi || !lo) return std::nullopt;
    out.push_back(static_cast<uint8_t>((*hi << 4) | *lo));
  }
  return out;
}

}  // namespace topo::rpc
