#include "rpc/rpc.h"

#include "p2p/node.h"
#include "wire/messages.h"

namespace topo::rpc {

std::string hash_to_hex(eth::TxHash h) {
  std::vector<uint8_t> bytes(32, 0);
  for (int i = 0; i < 8; ++i) bytes[31 - i] = static_cast<uint8_t>(h >> (8 * i));
  return to_hex_bytes(bytes);
}

std::optional<eth::TxHash> hash_from_hex(const std::string& s) {
  auto bytes = from_hex_bytes(s);
  if (!bytes || bytes->size() != 32) return std::nullopt;
  for (size_t i = 0; i < 24; ++i) {
    if ((*bytes)[i] != 0) return std::nullopt;
  }
  eth::TxHash h = 0;
  for (size_t i = 24; i < 32; ++i) h = (h << 8) | (*bytes)[i];
  return h;
}

Json make_error_response(const Json& id, int code, const std::string& message) {
  return Json(JsonObject{
      {"jsonrpc", Json("2.0")},
      {"id", id},
      {"error", Json(JsonObject{{"code", Json(code)}, {"message", Json(message)}})},
  });
}

Json make_result_response(const Json& id, Json value) {
  return Json(JsonObject{
      {"jsonrpc", Json("2.0")},
      {"id", id},
      {"result", std::move(value)},
  });
}

std::string handle_serialized(const std::string& request,
                              const std::function<Json(const Json&)>& handle_one) {
  const auto parsed = Json::parse(request);
  if (!parsed) return make_error_response(Json(), kParseError, "parse error").dump();
  if (!parsed->is_array()) return handle_one(*parsed).dump();
  const JsonArray& batch = parsed->as_array();
  if (batch.empty()) {
    return make_error_response(Json(), kInvalidRequest, "empty batch").dump();
  }
  JsonArray responses;
  for (const Json& entry : batch) {
    // A notification is a request *object* that lacks an "id" member
    // entirely (operator[] cannot tell absent from null, so look it up in
    // the object). Invalid entries (non-objects) still earn an error
    // response with a null id.
    const bool notification =
        entry.is_object() && entry.as_object().find("id") == entry.as_object().end();
    Json response = handle_one(entry);
    if (!notification) responses.push_back(std::move(response));
  }
  if (responses.empty()) return std::string();
  return Json(std::move(responses)).dump();
}

RpcServer::RpcServer(p2p::Network* net, p2p::PeerId node, uint64_t network_id)
    : net_(net), node_(node), network_id_(network_id) {}

Json RpcServer::error(const Json& id, int code, const std::string& message) const {
  return make_error_response(id, code, message);
}

Json RpcServer::result(const Json& id, Json value) const {
  return make_result_response(id, std::move(value));
}

std::string RpcServer::handle(const std::string& request) {
  return handle_serialized(request, [this](const Json& j) { return handle_json(j); });
}

Json RpcServer::handle_json(const Json& request) {
  if (!request.is_object() || !request["method"].is_string()) {
    return error(request["id"], kInvalidRequest, "invalid request");
  }
  const Json& id = request["id"];
  const std::string& method = request["method"].as_string();
  const Json& params = request["params"];
  Json out = dispatch(method, params);
  if (out.is_object() && out["__error_code"].is_number()) {
    return error(id, static_cast<int>(out["__error_code"].as_number()),
                 out["__error_message"].as_string());
  }
  return result(id, std::move(out));
}

namespace {
Json rpc_error(int code, const std::string& message) {
  return Json(JsonObject{{"__error_code", Json(code)}, {"__error_message", Json(message)}});
}
}  // namespace

Json RpcServer::tx_to_json(const eth::Transaction& tx, bool include_pool_state) const {
  JsonObject out{
      {"hash", Json(hash_to_hex(tx.hash()))},
      {"nonce", Json(to_hex_quantity(tx.nonce))},
      {"from", Json(to_hex_quantity(tx.sender))},
      {"to", Json(to_hex_quantity(tx.to))},
      {"value", Json(to_hex_quantity(tx.value))},
      {"gas", Json(to_hex_quantity(tx.gas))},
  };
  if (tx.fee1559) {
    out["maxFeePerGas"] = Json(to_hex_quantity(tx.fee1559->max_fee));
    out["maxPriorityFeePerGas"] = Json(to_hex_quantity(tx.fee1559->priority_fee));
    out["type"] = Json("0x2");
  } else {
    out["gasPrice"] = Json(to_hex_quantity(tx.gas_price));
    out["type"] = Json("0x0");
  }
  if (include_pool_state) {
    out["blockNumber"] = Json();  // null while unconfirmed
  }
  return Json(std::move(out));
}

Json RpcServer::dispatch(const std::string& method, const Json& params) {
  auto& node = net_->node(node_);

  if (method == "web3_clientVersion") {
    std::string version = node.client_version();
    if (!node.config().service.empty()) version += "/" + node.config().service;
    return Json(version);
  }
  if (method == "net_version") return Json(std::to_string(network_id_));
  if (method == "eth_gasPrice") {
    // Geth's oracle suggests a price from recent state; the pool median is
    // the estimator TopoShot's Y configuration uses (§5.2.1).
    return Json(to_hex_quantity(node.pool().median_pending_price()));
  }
  if (method == "net_peerCount") {
    return Json(to_hex_quantity(net_->peers_of(node_).size()));
  }
  if (method == "eth_blockNumber") {
    const uint64_t height = net_->chain().height();
    return Json(to_hex_quantity(height == 0 ? 0 : height - 1));
  }
  if (method == "eth_getBlockByNumber") {
    if (!params.is_array() || !params[size_t{0}].is_string()) {
      return rpc_error(kInvalidParams, "expected [blockNumber, fullTx]");
    }
    auto number = from_hex_quantity(params[size_t{0}].as_string());
    if (!number || *number >= net_->chain().height()) return Json();  // null
    const auto& block = net_->chain().blocks()[*number];
    const bool full = params[size_t{1}].is_bool() && params[size_t{1}].as_bool();
    JsonArray txs;
    for (const auto& tx : block.txs) {
      txs.push_back(full ? tx_to_json(tx, false) : Json(hash_to_hex(tx.hash())));
    }
    return Json(JsonObject{
        {"number", Json(to_hex_quantity(block.number))},
        {"timestamp", Json(to_hex_quantity(static_cast<uint64_t>(block.timestamp)))},
        {"gasLimit", Json(to_hex_quantity(block.gas_limit))},
        {"gasUsed", Json(to_hex_quantity(block.gas_used))},
        {"baseFeePerGas", Json(to_hex_quantity(block.base_fee))},
        {"transactions", Json(std::move(txs))},
    });
  }
  if (method == "eth_getTransactionByHash") {
    if (!params.is_array() || !params[size_t{0}].is_string()) {
      return rpc_error(kInvalidParams, "expected [txHash]");
    }
    auto hash = hash_from_hex(params[size_t{0}].as_string());
    if (!hash) return rpc_error(kInvalidParams, "malformed hash");
    if (const auto* tx = node.pool().find_hash(*hash)) return tx_to_json(*tx, true);
    if (net_->chain().includes(*hash)) {
      for (const auto& block : net_->chain().blocks()) {
        for (const auto& tx : block.txs) {
          if (tx.hash() == *hash) {
            Json out = tx_to_json(tx, false);
            out.as_object()["blockNumber"] = Json(to_hex_quantity(block.number));
            return out;
          }
        }
      }
    }
    return Json();  // null: unknown (the §6.1 "txC evicted" signal)
  }
  if (method == "eth_sendRawTransaction") {
    if (!params.is_array() || !params[size_t{0}].is_string()) {
      return rpc_error(kInvalidParams, "expected [rawTx]");
    }
    auto bytes = from_hex_bytes(params[size_t{0}].as_string());
    if (!bytes) return rpc_error(kInvalidParams, "malformed hex");
    auto tx = wire::decode_transaction(*bytes);
    if (!tx) return rpc_error(kInvalidParams, "undecodable transaction");
    const auto outcome = node.submit(*tx);
    if (!outcome.admitted()) {
      return rpc_error(kInvalidParams,
                       std::string("rejected: ") + mempool::admit_code_name(outcome.code));
    }
    return Json(hash_to_hex(tx->hash()));
  }
  if (method == "txpool_status") {
    return Json(JsonObject{
        {"pending", Json(to_hex_quantity(node.pool().pending_count()))},
        {"queued", Json(to_hex_quantity(node.pool().future_count()))},
    });
  }
  if (method == "txpool_content") {
    JsonArray pending, queued;
    for (const auto& tx : node.pool().pending_snapshot()) pending.push_back(tx_to_json(tx, false));
    for (const auto& tx : node.pool().future_snapshot()) queued.push_back(tx_to_json(tx, false));
    return Json(JsonObject{
        {"pending", Json(std::move(pending))},
        {"queued", Json(std::move(queued))},
    });
  }
  if (method == "admin_peers") {
    JsonArray peers;
    for (const auto peer : net_->peers_of(node_)) {
      peers.push_back(Json(JsonObject{{"id", Json(static_cast<uint64_t>(peer))}}));
    }
    return Json(std::move(peers));
  }
  return rpc_error(kMethodNotFound, "unknown method: " + method);
}

std::optional<Json> RpcClient::call(const std::string& method, JsonArray params) {
  const Json request(JsonObject{
      {"jsonrpc", Json("2.0")},
      {"id", Json(next_id_++)},
      {"method", Json(method)},
      {"params", Json(std::move(params))},
  });
  // Round-trip through serialization, exactly like an HTTP transport.
  const auto response = Json::parse(server_->handle(request.dump()));
  if (!response || !(*response)["error"].is_null()) return std::nullopt;
  return (*response)["result"];
}

std::optional<std::string> RpcClient::client_version() {
  auto r = call("web3_clientVersion");
  if (!r || !r->is_string()) return std::nullopt;
  return r->as_string();
}

std::optional<uint64_t> RpcClient::block_number() {
  auto r = call("eth_blockNumber");
  if (!r || !r->is_string()) return std::nullopt;
  return from_hex_quantity(r->as_string());
}

bool RpcClient::has_transaction(eth::TxHash hash) {
  auto r = call("eth_getTransactionByHash", {Json(hash_to_hex(hash))});
  return r.has_value() && !r->is_null();
}

std::optional<std::string> RpcClient::send_raw_transaction(const eth::Transaction& tx) {
  auto r = call("eth_sendRawTransaction",
                {Json(to_hex_bytes(wire::encode_transaction(tx)))});
  if (!r || !r->is_string()) return std::nullopt;
  return r->as_string();
}

std::vector<p2p::PeerId> RpcClient::peers() {
  std::vector<p2p::PeerId> out;
  auto r = call("admin_peers");
  if (!r || !r->is_array()) return out;
  for (const auto& entry : r->as_array()) {
    if (entry["id"].is_number()) out.push_back(static_cast<p2p::PeerId>(entry["id"].as_number()));
  }
  return out;
}

}  // namespace topo::rpc
