#include "rpc/monitor_rpc.h"

#include <cmath>
#include <memory>
#include <optional>

#include "monitor/monitor.h"

namespace topo::rpc {

namespace {

Json method_error(int code, const std::string& message) {
  return Json(JsonObject{{"__error_code", Json(code)},
                         {"__error_message", Json(message)}});
}

/// Positional version param: a non-negative integral number.
std::optional<uint64_t> version_param(const Json& params, size_t index) {
  const Json& p = params[index];
  if (!p.is_number()) return std::nullopt;
  const double d = p.as_number();
  if (d < 0 || d != std::floor(d)) return std::nullopt;
  return static_cast<uint64_t>(d);
}

}  // namespace

std::string MonitorRpcServer::handle(const std::string& request) {
  return handle_serialized(request,
                           [this](const Json& j) { return handle_json(j); });
}

Json MonitorRpcServer::handle_json(const Json& request) {
  if (!request.is_object() || !request["method"].is_string()) {
    log_error("", kInvalidRequest, "invalid request");
    return make_error_response(request["id"], kInvalidRequest, "invalid request");
  }
  const Json& id = request["id"];
  const std::string& method = request["method"].as_string();
  Json out = dispatch(method, request["params"]);
  if (out.is_object() && out["__error_code"].is_number()) {
    const int code = static_cast<int>(out["__error_code"].as_number());
    const std::string& message = out["__error_message"].as_string();
    log_error(method, code, message);
    return make_error_response(id, code, message);
  }
  return make_result_response(id, std::move(out));
}

void MonitorRpcServer::log_error(const std::string& method, int code,
                                 const std::string& message) {
  mon_->event_log().log(util::LogLevel::kWarn, "rpc", "error",
                        {{"method", Json(method)},
                         {"code", Json(code)},
                         {"message", Json(message)}});
}

Json MonitorRpcServer::dispatch(const std::string& method, const Json& params) {
  if (method == "topo_getSnapshot") {
    std::shared_ptr<const monitor::TopologySnapshot> snap;
    if (params.is_array() && !params.as_array().empty()) {
      const auto version = version_param(params, 0);
      if (!version) return method_error(kInvalidParams, "expected [version?]");
      snap = mon_->snapshot(*version);
      if (snap == nullptr) return method_error(kInvalidParams, "unknown version");
    } else {
      snap = mon_->latest();
      if (snap == nullptr) return method_error(kInvalidParams, "no published versions");
    }
    return monitor::snapshot_to_json(*snap);
  }
  if (method == "topo_getDiff") {
    const auto v1 = version_param(params, 0);
    const auto v2 = version_param(params, 1);
    if (!params.is_array() || !v1 || !v2) {
      return method_error(kInvalidParams, "expected [fromVersion, toVersion]");
    }
    const auto diff = mon_->diff(*v1, *v2);
    if (!diff) return method_error(kInvalidParams, "unknown version");
    return monitor::diff_to_json(*diff);
  }
  if (method == "topo_getStatus") {
    return monitor::status_to_json(mon_->status());
  }
  if (method == "topo_getMetrics") {
    bool raw = false;
    if (params.is_array() && !params.as_array().empty()) {
      const Json& mode = params[0];
      if (!mode.is_string() ||
          (mode.as_string() != "raw" && mode.as_string() != "wrapped")) {
        return method_error(kInvalidParams, "expected [] or [\"raw\"]");
      }
      raw = mode.as_string() == "raw";
    }
    const std::shared_ptr<const std::string> body = mon_->metrics_exposition();
    if (raw) return Json(*body);
    return Json(JsonObject{
        {"schema", Json(kMetricsSchema)},
        {"format", Json("prometheus-text-0.0.4")},
        {"body", Json(*body)},
    });
  }
  if (method == "topo_getHealth") {
    if (params.is_array() && !params.as_array().empty()) {
      return method_error(kInvalidParams, "expected no params");
    }
    return monitor::health_to_json(*mon_->health());
  }
  return method_error(kMethodNotFound, "unknown method: " + method);
}

}  // namespace topo::rpc
