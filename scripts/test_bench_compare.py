#!/usr/bin/env python3
"""Self-test for bench_compare.py: a synthetic regression must fail the gate.

Run directly (or via ctest as `bench_compare_selftest`). Builds fake
google-benchmark JSON in a temp dir, normalizes a baseline from it, then
checks that `compare` passes on identical numbers, passes within the
tolerance band, and exits non-zero on a regression beyond the band.
"""

import json
import os
import subprocess
import sys
import tempfile

SCRIPT = os.path.join(os.path.dirname(os.path.abspath(__file__)), "bench_compare.py")


def gbench_json(path, items_per_second):
    doc = {
        "benchmarks": [
            {"name": "BM_Fast", "real_time": 10.0, "time_unit": "ns",
             "items_per_second": items_per_second},
            {"name": "BM_Steady", "real_time": 20.0, "time_unit": "ns",
             "items_per_second": 5.0e6},
        ]
    }
    with open(path, "w") as f:
        json.dump(doc, f)


def run(*argv):
    return subprocess.run([sys.executable, SCRIPT, *argv],
                          capture_output=True, text=True)


def main():
    with tempfile.TemporaryDirectory() as d:
        base_raw = os.path.join(d, "micro.json")
        baseline = os.path.join(d, "BENCH_baseline.json")
        gbench_json(base_raw, 1.0e6)

        r = run("normalize", f"micro={base_raw}", "-o", baseline, "--tolerance", "0.10")
        assert r.returncode == 0, f"normalize failed: {r.stderr}"

        # Identical numbers: pass.
        r = run("compare", baseline, f"micro={base_raw}")
        assert r.returncode == 0, f"identical run should pass: {r.stdout}{r.stderr}"

        # 5% slower with a 10% band: still pass.
        within = os.path.join(d, "within.json")
        gbench_json(within, 0.95e6)
        r = run("compare", baseline, f"micro={within}")
        assert r.returncode == 0, f"within-band run should pass: {r.stdout}{r.stderr}"

        # 40% slower: the synthetic regression must exit non-zero.
        regressed = os.path.join(d, "regressed.json")
        gbench_json(regressed, 0.6e6)
        r = run("compare", baseline, f"micro={regressed}")
        assert r.returncode != 0, "regression beyond the band must fail the gate"
        assert "REGRESSED" in r.stdout and "BM_Fast" in r.stdout, r.stdout

        # Tolerance override flips the verdict.
        r = run("compare", baseline, f"micro={regressed}", "--tolerance", "0.5")
        assert r.returncode == 0, "explicit wide band should pass"

    print("bench_compare self-test: OK")


if __name__ == "__main__":
    main()
