#!/usr/bin/env python3
"""Self-test for bench_compare.py: a synthetic regression must fail the gate.

Run directly (or via ctest as `bench_compare_selftest`). Builds fake
google-benchmark JSON in a temp dir, normalizes a baseline from it, then
checks that `compare` passes on identical numbers, passes within the
tolerance band, and exits non-zero on a regression beyond the band.
"""

import json
import os
import subprocess
import sys
import tempfile

SCRIPT = os.path.join(os.path.dirname(os.path.abspath(__file__)), "bench_compare.py")


def gbench_json(path, items_per_second):
    doc = {
        "benchmarks": [
            {"name": "BM_Fast", "real_time": 10.0, "time_unit": "ns",
             "items_per_second": items_per_second},
            {"name": "BM_Steady", "real_time": 20.0, "time_unit": "ns",
             "items_per_second": 5.0e6},
        ]
    }
    with open(path, "w") as f:
        json.dump(doc, f)


def run(*argv):
    return subprocess.run([sys.executable, SCRIPT, *argv],
                          capture_output=True, text=True)


def main():
    with tempfile.TemporaryDirectory() as d:
        base_raw = os.path.join(d, "micro.json")
        baseline = os.path.join(d, "BENCH_baseline.json")
        gbench_json(base_raw, 1.0e6)

        r = run("normalize", f"micro={base_raw}", "-o", baseline, "--tolerance", "0.10")
        assert r.returncode == 0, f"normalize failed: {r.stderr}"

        # Identical numbers: pass.
        r = run("compare", baseline, f"micro={base_raw}")
        assert r.returncode == 0, f"identical run should pass: {r.stdout}{r.stderr}"

        # 5% slower with a 10% band: still pass.
        within = os.path.join(d, "within.json")
        gbench_json(within, 0.95e6)
        r = run("compare", baseline, f"micro={within}")
        assert r.returncode == 0, f"within-band run should pass: {r.stdout}{r.stderr}"

        # 40% slower: the synthetic regression must exit non-zero.
        regressed = os.path.join(d, "regressed.json")
        gbench_json(regressed, 0.6e6)
        r = run("compare", baseline, f"micro={regressed}")
        assert r.returncode != 0, "regression beyond the band must fail the gate"
        assert "REGRESSED" in r.stdout and "BM_Fast" in r.stdout, r.stdout

        # Tolerance override flips the verdict.
        r = run("compare", baseline, f"micro={regressed}", "--tolerance", "0.5")
        assert r.returncode == 0, "explicit wide band should pass"

        # Event-mix gating is two-sided: counts moving UP beyond the band
        # fail too (a speedup in dispatch volume still means the simulated
        # behavior changed).
        def sweep_json(path, deliver_tx):
            doc = {"cells": [{"loss": 0.0, "retries": 0, "recall": 1.0,
                              "precision": 1.0, "attempts": 1, "inconclusive": 0,
                              "remeasured": 0}],
                   "event_mix": {"deliver_tx": deliver_tx, "mine_tick": 0}}
            with open(path, "w") as f:
                json.dump(doc, f)

        sweep_base = os.path.join(d, "sweep.json")
        sweep_json(sweep_base, 1000.0)
        r = run("normalize", f"sweep={sweep_base}", "-o", baseline, "--tolerance", "0.10")
        assert r.returncode == 0, f"sweep normalize failed: {r.stderr}"
        r = run("compare", baseline, f"sweep={sweep_base}")
        assert r.returncode == 0, f"identical sweep should pass: {r.stdout}{r.stderr}"

        drifted_up = os.path.join(d, "drift_up.json")
        sweep_json(drifted_up, 1200.0)  # +20% with a 10% band
        r = run("compare", baseline, f"sweep={drifted_up}")
        assert r.returncode != 0, "upward event-mix drift must fail the gate"
        assert "DRIFTED" in r.stdout and "event_mix/deliver_tx" in r.stdout, r.stdout

        # A kind the baseline never dispatched appearing at all is a drift.
        new_kind = os.path.join(d, "new_kind.json")
        sweep_json(new_kind, 1000.0)
        with open(new_kind) as f:
            doc = json.load(f)
        doc["event_mix"]["mine_tick"] = 5.0
        with open(new_kind, "w") as f:
            json.dump(doc, f)
        r = run("compare", baseline, f"sweep={new_kind}")
        assert r.returncode != 0, "a newly appearing event kind must fail the gate"
        assert "event_mix/mine_tick" in r.stdout, r.stdout

        # The "monitor" sweep shape: detection rate and coverage gate as
        # one-sided floors, so a detection drop beyond the band fails; the
        # cost cells (epoch_sim_seconds, budget_utilization) gate two-sided.
        def monitor_json(path, detect, epoch_sim=110.0, cost_cells=True):
            cell = {"churn": 2.0, "budget": 41, "reprobe": 0.149,
                    "detect_within_2": detect, "coverage": 1.0,
                    "inconclusive": 0, "scoreable": 10}
            if cost_cells:
                cell["epoch_sim_seconds"] = epoch_sim
                cell["budget_utilization"] = 0.25
            doc = {"monitor": [cell]}
            with open(path, "w") as f:
                json.dump(doc, f)

        mon_base = os.path.join(d, "monitor.json")
        monitor_json(mon_base, 1.0)
        r = run("normalize", f"monitor={mon_base}", "-o", baseline, "--tolerance", "0.10")
        assert r.returncode == 0, f"monitor normalize failed: {r.stderr}"
        r = run("compare", baseline, f"monitor={mon_base}")
        assert r.returncode == 0, f"identical monitor sweep should pass: {r.stdout}{r.stderr}"

        mon_regressed = os.path.join(d, "monitor_regressed.json")
        monitor_json(mon_regressed, 0.6)  # -40% detection with a 10% band
        r = run("compare", baseline, f"monitor={mon_regressed}")
        assert r.returncode != 0, "a detection-rate drop must fail the gate"
        assert "churn=2/detect_within_2" in r.stdout, r.stdout

        # A *faster* epoch still fails: the cost cells are two-sided.
        mon_faster = os.path.join(d, "monitor_faster.json")
        monitor_json(mon_faster, 1.0, epoch_sim=50.0)
        r = run("compare", baseline, f"monitor={mon_faster}")
        assert r.returncode != 0, "epoch-cost drift in either direction must fail"
        assert "churn=2/epoch_sim_seconds" in r.stdout, r.stdout

        # Old artifacts without the cost cells still normalize and compare
        # against their own (cost-less) baseline.
        mon_old = os.path.join(d, "monitor_old.json")
        monitor_json(mon_old, 1.0, cost_cells=False)
        old_baseline = os.path.join(d, "baseline_old.json")
        r = run("normalize", f"monitor={mon_old}", "-o", old_baseline,
                "--tolerance", "0.10")
        assert r.returncode == 0, f"cost-less normalize failed: {r.stderr}"
        r = run("compare", old_baseline, f"monitor={mon_old}")
        assert r.returncode == 0, f"cost-less sweep should pass: {r.stdout}{r.stderr}"

    print("bench_compare self-test: OK")


if __name__ == "__main__":
    main()
