#!/usr/bin/env python3
"""Compare google-benchmark results against a committed baseline.

Two subcommands:

  normalize  — fold one or more raw google-benchmark JSON files (produced
               with --benchmark_format=json) into the normalized baseline
               schema (toposhot-bench-v1). Used to create or refresh
               BENCH_baseline.json.

  compare    — check raw google-benchmark JSON files against a baseline
               with a relative tolerance band. Exits non-zero when any
               benchmark's throughput (items_per_second, falling back to
               inverse real time) falls below baseline * (1 - tolerance).

The tolerance band exists because microbenchmarks on shared CI runners
jitter; see docs/PERFORMANCE.md for the policy (default 25% on CI, tighter
locally). Regressions report every offending benchmark before exiting.

Only the Python standard library is used.
"""

import argparse
import json
import sys

SCHEMA = "toposhot-bench-v1"


def load_results(path):
    """One results file -> {name: {"items_per_second", "real_time_ns"}}.

    Accepts four shapes, dispatched on document keys:
      - "benchmarks": raw google-benchmark JSON (micro_network, micro_mempool)
      - "cells":      the fault_recall --out sweep; metric = recall per cell
      - "rows":       the fig5_parallel_speedup --out sweep; metric = speedup per K
      - "rivalry":    the strategy_rivalry --out sweep; two metrics per cell:
                      recall (one-sided floor) and txs_sent (two-sided — the
                      probe count of a deterministic campaign moving in either
                      direction means the strategy's protocol changed)
      - "monitor":    the monitor_tracking --out sweep; two floor-gated
                      metrics per churn level — detect_within_2 (the tracking
                      acceptance bar) and coverage — plus, when the artifact
                      carries them, two cost metrics gated TWO-SIDED:
                      epoch_sim_seconds and budget_utilization (deterministic
                      runs, so cost drift either way is a behavior change)
    The sweep metrics ride in the items_per_second field — compare only
    needs "bigger is better", and the sims are deterministic, so any drift
    beyond the band signals a behavior change, not noise.

    Sweep documents may also carry an "event_mix" object (per-kind simulator
    dispatch counts). Those become "event_mix/<kind>" entries and are gated
    TWO-SIDED at compare time: the sims are deterministic, so the event mix
    moving in either direction means the hot path's behavior changed (e.g.
    an event kind silently disappearing after a queue rewrite).
    """
    with open(path) as f:
        doc = json.load(f)
    out = {}
    for kind, count in doc.get("event_mix", {}).items():
        out[f"event_mix/{kind}"] = {"items_per_second": float(count), "real_time_ns": 0.0}
    if "benchmarks" in doc:
        for b in doc["benchmarks"]:
            if b.get("run_type") == "aggregate":
                continue  # keep per-run entries; aggregates would double-count
            name = b["name"]
            unit = b.get("time_unit", "ns")
            scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}.get(unit, 1.0)
            real_ns = float(b.get("real_time", 0.0)) * scale
            ips = b.get("items_per_second")
            if ips is None and real_ns > 0:
                ips = 1e9 / real_ns  # one item per iteration
            out[name] = {
                "items_per_second": float(ips) if ips is not None else 0.0,
                "real_time_ns": real_ns,
            }
    elif "cells" in doc:
        for c in doc["cells"]:
            name = f"loss={c['loss']:g}/retries={c['retries']}"
            out[name] = {"items_per_second": float(c["recall"]), "real_time_ns": 0.0}
    elif "rows" in doc:
        for r in doc["rows"]:
            out[f"k={r['k']}"] = {"items_per_second": float(r["speedup"]),
                                  "real_time_ns": float(r["sim_time"]) * 1e9}
    elif "rivalry" in doc:
        for c in doc["rivalry"]:
            cell = f"{c['strategy']}/mix={c['mix']}/loss={c['loss']:g}"
            out[f"{cell}/recall"] = {"items_per_second": float(c["recall"]),
                                     "real_time_ns": 0.0}
            out[f"{cell}/txs_sent"] = {"items_per_second": float(c["txs_sent"]),
                                       "real_time_ns": 0.0}
    elif "monitor" in doc:
        for c in doc["monitor"]:
            cell = f"churn={c['churn']:g}"
            out[f"{cell}/detect_within_2"] = {
                "items_per_second": float(c["detect_within_2"]), "real_time_ns": 0.0}
            out[f"{cell}/coverage"] = {"items_per_second": float(c["coverage"]),
                                       "real_time_ns": 0.0}
            # Telemetry-era cost cells; absent from older artifacts.
            for key in ("epoch_sim_seconds", "budget_utilization"):
                if key in c:
                    out[f"{cell}/{key}"] = {"items_per_second": float(c[key]),
                                            "real_time_ns": 0.0}
    elif not out:
        sys.exit(f"error: {path} is neither gbench JSON nor a known sweep artifact")
    return out


def two_sided(name):
    """Entries gated in both directions; see load_results. Event-mix counts,
    rivalry probe counts, and the monitor's per-epoch cost cells are
    deterministic, so drift either way is a behavior change, not jitter."""
    return (name.startswith("event_mix/") or name.endswith("/txs_sent")
            or name.endswith("/epoch_sim_seconds")
            or name.endswith("/budget_utilization"))


def load_baseline(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != SCHEMA:
        sys.exit(f"error: {path} is not a {SCHEMA} document")
    return doc


def cmd_normalize(args):
    suites = {}
    for spec in args.inputs:
        # "suite=path" labels the suite; bare paths use the file stem.
        if "=" in spec:
            suite, path = spec.split("=", 1)
        else:
            path = spec
            suite = path.rsplit("/", 1)[-1].removesuffix(".json")
        suites[suite] = load_results(path)
    doc = {
        "schema": SCHEMA,
        "note": args.note,
        "tolerance": args.tolerance,
        "suites": suites,
    }
    with open(args.output, "w") as f:
        json.dump(doc, f, indent=2, sort_keys=True)
        f.write("\n")
    n = sum(len(v) for v in suites.values())
    print(f"wrote {args.output}: {len(suites)} suite(s), {n} benchmark(s)")
    return 0


def cmd_compare(args):
    baseline = load_baseline(args.baseline)
    tolerance = args.tolerance if args.tolerance is not None else baseline.get("tolerance", 0.25)
    regressions = []
    checked = 0
    for spec in args.inputs:
        if "=" in spec:
            suite, path = spec.split("=", 1)
        else:
            path = spec
            suite = path.rsplit("/", 1)[-1].removesuffix(".json")
        base_suite = baseline["suites"].get(suite)
        if base_suite is None:
            print(f"warning: suite '{suite}' not in baseline, skipping")
            continue
        current = load_results(path)
        for name, cur in sorted(current.items()):
            base = base_suite.get(name)
            if base is None:
                print(f"  new       {suite}/{name}: {cur['items_per_second']:.3g} items/s")
                continue
            checked += 1
            floor = base["items_per_second"] * (1.0 - tolerance)
            ratio = (cur["items_per_second"] / base["items_per_second"]
                     if base["items_per_second"] > 0 else 1.0)
            if two_sided(name):
                ceiling = base["items_per_second"] * (1.0 + tolerance)
                if base["items_per_second"] > 0:
                    ok = floor <= cur["items_per_second"] <= ceiling
                else:
                    # A kind the baseline never dispatched appearing at all
                    # is a behavior change, not jitter.
                    ok = cur["items_per_second"] == 0
                status = "ok" if ok else "DRIFTED"
            else:
                status = "ok" if cur["items_per_second"] >= floor else "REGRESSED"
            print(f"  {status:<9} {suite}/{name}: {ratio:.2f}x of baseline "
                  f"({cur['items_per_second']:.3g} vs {base['items_per_second']:.3g} items/s)")
            if status != "ok":
                regressions.append(f"{suite}/{name}")
    if checked == 0:
        sys.exit("error: no benchmarks matched the baseline — wrong suite labels?")
    if regressions:
        print(f"\n{len(regressions)} result(s) outside the {tolerance:.0%} tolerance band:")
        for r in regressions:
            print(f"  {r}")
        return 1
    print(f"\nall {checked} benchmark(s) within the {tolerance:.0%} tolerance band")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = ap.add_subparsers(dest="cmd", required=True)

    norm = sub.add_parser("normalize", help="fold raw gbench JSON into a baseline")
    norm.add_argument("inputs", nargs="+", metavar="SUITE=PATH",
                      help="raw google-benchmark JSON, optionally labeled suite=path")
    norm.add_argument("-o", "--output", default="BENCH_baseline.json")
    norm.add_argument("--note", default="", help="free-text provenance (machine, commit)")
    norm.add_argument("--tolerance", type=float, default=0.25,
                      help="default tolerance band recorded in the baseline")
    norm.set_defaults(func=cmd_normalize)

    comp = sub.add_parser("compare", help="check raw gbench JSON against a baseline")
    comp.add_argument("baseline")
    comp.add_argument("inputs", nargs="+", metavar="SUITE=PATH")
    comp.add_argument("--tolerance", type=float, default=None,
                      help="override the baseline's tolerance band")
    comp.set_defaults(func=cmd_compare)

    args = ap.parse_args()
    sys.exit(args.func(args))


if __name__ == "__main__":
    main()
