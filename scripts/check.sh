#!/usr/bin/env bash
# Strict local verification: the tier-1 build/test cycle with warnings as
# errors, then the same test suite under address + UB sanitizers.
#
#   scripts/check.sh          # both passes
#   scripts/check.sh --fast   # -Werror pass only
set -euo pipefail

cd "$(dirname "$0")/.."

run_pass() {
  local dir="$1"; shift
  cmake -B "$dir" -S . "$@" > /dev/null
  cmake --build "$dir" -j
  ctest --test-dir "$dir" --output-on-failure -j "$(nproc)"
}

echo "== pass 1: -Wall -Wextra -Werror =="
run_pass build-strict -DCMAKE_CXX_FLAGS=-Werror

if [[ "${1:-}" != "--fast" ]]; then
  echo "== pass 2: AddressSanitizer + UBSan =="
  run_pass build-asan -DCMAKE_BUILD_TYPE=Asan
  # The fault-injection layer exercises hook/teardown paths (injector
  # outliving scheduled sim callbacks, node restarts mid-flight) that only
  # ASan can vouch for; pin its suite explicitly so a filter change in the
  # main run can never silently drop it.
  echo "== pass 3: fault-injection suite under ASan (focused) =="
  ./build-asan/tests/toposhot_tests --gtest_filter='Fault*'
fi

echo "All checks passed."
