#!/usr/bin/env bash
# Strict local verification: the tier-1 build/test cycle with warnings as
# errors, then the same test suite under address + UB sanitizers.
#
#   scripts/check.sh          # both passes
#   scripts/check.sh --fast   # -Werror pass only
set -euo pipefail

cd "$(dirname "$0")/.."

run_pass() {
  local dir="$1"; shift
  cmake -B "$dir" -S . "$@" > /dev/null
  cmake --build "$dir" -j
  ctest --test-dir "$dir" --output-on-failure -j "$(nproc)"
}

echo "== pass 1: -Wall -Wextra -Werror =="
run_pass build-strict -DCMAKE_CXX_FLAGS=-Werror

echo "== pass 1b: trace-export sanity (Perfetto-loadable JSON) =="
# Drive a traced measurement through the CLI and verify the artifact is
# valid Chrome trace-event JSON with the expected envelope — the cheapest
# end-to-end check that the span layer stays wired through the drivers.
./build-strict/examples/example_toposhot_cli --mode=pair --nodes=12 --a=0 --b=1 \
  --trace-out=build-strict/pair_trace.json --trace-capacity=8192 > /dev/null
python3 - build-strict/pair_trace.json <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["displayTimeUnit"] == "ms", "bad displayTimeUnit"
events = doc["traceEvents"]
assert events, "empty trace"
for e in events:
    assert e["ph"] == "X" and "ts" in e and "dur" in e and "args" in e, e
assert any(e["name"].startswith("pair ") for e in events), "no pair span"
print(f"trace sanity: {len(events)} events OK")
EOF

if [[ "${1:-}" != "--fast" ]]; then
  echo "== pass 2: AddressSanitizer + UBSan =="
  run_pass build-asan -DCMAKE_BUILD_TYPE=Asan
  # The fault-injection layer exercises hook/teardown paths (injector
  # outliving scheduled sim callbacks, node restarts mid-flight) that only
  # ASan can vouch for; pin its suite explicitly so a filter change in the
  # main run can never silently drop it. The tracing/diagnostics suites ride
  # along: span open/close bookkeeping and the ring-walk visit() are exactly
  # the kind of index arithmetic ASan exists for. The strategy-seam suites
  # (Strategy*, Dethna*, TxProbe*) too: rival strategies drive raw
  # announce/echo bookkeeping across node restarts. The world-fork suites
  # (SnapshotWorld*, ForkWorld*, PeerLifetime*) are here because snapshot
  # restore rebuilds raw sink pointers and Peer auto-detach is precisely a
  # use-after-free contract — only ASan can prove the sink slot swap works.
  # The batched-delivery suites (BatchDelivery*, FifoClock*, PayloadArena*)
  # ride here too: the drain loop holds references across batch-map
  # mutation and the arena recycles/releases chunks under live handles —
  # exactly the lifetime bugs ASan exists for. The monitor suites
  # (LinkTable*, TopologyMonitor*, MonitorRpc*, MonitorGolden*, etc.) join
  # them: the daemon hands shared_ptr snapshots across a writer/reader
  # boundary while concurrent readers race the epoch loop — the
  # concurrent-reader test is only meaningful with ASan watching. The
  # telemetry-plane suites (EventLog*, EpochStats via TopologyMonitor*,
  # Health*, Prometheus*) complete the set: the event log takes concurrent
  # appends from RPC reader threads (including the reader-vs-epoch-loop
  # race on topo_getMetrics / topo_getHealth inside MonitorRpc*), and the
  # exposition walks histogram bucket arrays — ring and index arithmetic
  # ASan should watch.
  echo "== pass 3: fault-injection + tracing + strategy suites under ASan (focused) =="
  ./build-asan/tests/toposhot_tests \
    --gtest_filter='Fault*:TraceRing*:SpanIds*:SpanTracer*:ChromeTrace*:DiagnosticsAnnex*:ProbeCausePlumbing*:GoldenDeterminism*:Strategy*:Dethna*:TxProbe*:SnapshotWorld*:ForkWorld*:PeerLifetime*:BatchDelivery*:FifoClock*:PayloadArena*:LinkTable*:TopologyMonitor*:TopologyDiffTest*:MonitorStatusTest*:MonitorJson*:MonitorSchedule*:MonitorRpc*:MonitorGolden*:EvaluateTracking*:EventLog*:Health*:Prometheus*'
fi

echo "All checks passed."
