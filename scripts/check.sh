#!/usr/bin/env bash
# Strict local verification: the tier-1 build/test cycle with warnings as
# errors, then the same test suite under address + UB sanitizers.
#
#   scripts/check.sh          # both passes
#   scripts/check.sh --fast   # -Werror pass only
set -euo pipefail

cd "$(dirname "$0")/.."

run_pass() {
  local dir="$1"; shift
  cmake -B "$dir" -S . "$@" > /dev/null
  cmake --build "$dir" -j
  ctest --test-dir "$dir" --output-on-failure -j "$(nproc)"
}

echo "== pass 1: -Wall -Wextra -Werror =="
run_pass build-strict -DCMAKE_CXX_FLAGS=-Werror

if [[ "${1:-}" != "--fast" ]]; then
  echo "== pass 2: AddressSanitizer + UBSan =="
  run_pass build-asan -DCMAKE_BUILD_TYPE=Asan
fi

echo "All checks passed."
